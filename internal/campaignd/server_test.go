package campaignd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// genInline builds an inline-universe spec of n scenarios; at a 10s
// horizon each scenario costs a few milliseconds of wall clock, which
// is how the lifecycle tests dilate campaigns enough to observe them
// mid-flight.
func genInline(campaign string, n int, horizon string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `{"campaign":%q,"universe":{"kind":"inline","horizon":%q,"scenarios":[`, campaign, horizon)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"id":"s%04d","faults":"open @caps.accel0.harness from %dus"}`, i, 100+i)
	}
	sb.WriteString(`]}}`)
	return sb.String()
}

const tinySpec = `{"campaign":"tiny","universe":{"kind":"inline","horizon":"2ms","scenarios":[` +
	`{"id":"a","faults":"open @caps.accel0.harness from 100us"},` +
	`{"id":"b","faults":"omission @caps.can.bus from 200us"},` +
	`{"id":"c","faults":"stuck-at-1 @caps.accel0.harness from 300us"}]}}`

// newTestDaemon builds a started scheduler + HTTP server over a fresh
// store. Progress rate limiting is off so tests see every completion.
func newTestDaemon(t testing.TB) (*Scheduler, *httptest.Server) {
	t.Helper()
	sched, err := NewScheduler(Config{DataDir: t.TempDir(), ProgressInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	sched.Start()
	srv := httptest.NewServer(NewServer(sched))
	t.Cleanup(func() {
		srv.Close()
		sched.Stop()
	})
	return sched, srv
}

// submit POSTs a spec and returns the allocated run ID.
func submit(t testing.TB, url, spec string) string {
	t.Helper()
	resp, err := http.Post(url+"/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /runs = %d: %s", resp.StatusCode, body.Error)
	}
	return body.ID
}

// waitFinal subscribes to a run's hub and blocks until its terminal
// event, failing the test unless the state matches want.
func waitFinal(t testing.TB, sched *Scheduler, id, want string) {
	t.Helper()
	h := sched.Hub(id)
	if h == nil {
		t.Fatalf("run %s has no hub", id)
	}
	ch, cancel := h.subscribe()
	defer cancel()
	deadline := time.After(120 * time.Second)
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				t.Fatalf("run %s: event stream closed without a final event", id)
			}
			if e.Final {
				if e.State != want {
					t.Fatalf("run %s finished %q (%s), want %q", id, e.State, e.Error, want)
				}
				return
			}
		case <-deadline:
			t.Fatalf("run %s: no final event", id)
		}
	}
}

// TestServerRunLifecycle drives one campaign through every endpoint:
// submit, status, events, result (JSON and text), metrics, list.
func TestServerRunLifecycle(t *testing.T) {
	sched, srv := newTestDaemon(t)
	id := submit(t, srv.URL, tinySpec)
	if id != "r000001" {
		t.Fatalf("first run id = %q", id)
	}
	waitFinal(t, sched, id, StateDone)

	var st struct{ State, Campaign string }
	getJSON(t, srv.URL+"/runs/"+id, &st)
	if st.State != StateDone || st.Campaign != "tiny" {
		t.Fatalf("run status = %+v", st)
	}

	var doc ResultDoc
	getJSON(t, srv.URL+"/runs/"+id+"/result", &doc)
	if doc.Scenarios != 3 || len(doc.Outcomes) != 3 {
		t.Fatalf("result doc = %+v", doc)
	}
	resp, err := http.Get(srv.URL + "/runs/" + id + "/result?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text := readAll(t, resp)
	if !strings.Contains(text, "campaign:  3 inline scenarios, workers=0") || !strings.Contains(text, "tally:") {
		t.Fatalf("text result:\n%s", text)
	}
	if text != doc.Text {
		t.Fatal("format=text body differs from the result document's Text")
	}

	var metrics struct {
		Counters map[string]uint64 `json:"counters"`
	}
	getJSON(t, srv.URL+"/runs/"+id+"/metrics", &metrics)
	if metrics.Counters["campaign.runs{campaign=tiny}"] != 3 {
		t.Fatalf("metrics counters = %v", metrics.Counters)
	}

	var list struct {
		Runs []struct{ ID, State string } `json:"runs"`
	}
	getJSON(t, srv.URL+"/runs", &list)
	if len(list.Runs) != 1 || list.Runs[0].ID != id || list.Runs[0].State != StateDone {
		t.Fatalf("run list = %+v", list.Runs)
	}
}

// TestServerEventStreamShape pins the event grammar on a live run: a
// state event first, progress events strictly monotonic, exactly one
// final event, state done.
func TestServerEventStreamShape(t *testing.T) {
	_, srv := newTestDaemon(t)
	id := submit(t, srv.URL, genInline("stream", 48, "10s"))
	resp, err := http.Get(srv.URL + "/runs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var events []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event %q: %v", sc.Text(), err)
		}
		events = append(events, e)
		if e.Final {
			break
		}
	}
	if len(events) < 2 {
		t.Fatalf("stream delivered %d events", len(events))
	}
	if events[0].Type != "state" {
		t.Fatalf("first event is %+v, want a state event", events[0])
	}
	last := events[len(events)-1]
	if !last.Final || last.State != StateDone {
		t.Fatalf("last event = %+v", last)
	}
	completed := -1
	progress := 0
	for _, e := range events {
		if e.Type != "progress" {
			continue
		}
		progress++
		// Monotonic, never decreasing; the meter's final update may
		// repeat the last completion count.
		if e.Run != id || e.Total != 48 || e.Completed < completed {
			t.Fatalf("progress event out of order or mislabeled: %+v (prev completed %d)", e, completed)
		}
		completed = e.Completed
	}
	if progress == 0 {
		t.Fatal("no progress events on an unthrottled stream")
	}
}

// TestServerConcurrentClientsFIFO submits from many clients at once:
// every submission gets a unique ID, the executor never runs two
// campaigns at a time (observed as: a later run is still queued while
// an earlier one is running), and every run completes with the same
// result bytes for the same spec.
func TestServerConcurrentClientsFIFO(t *testing.T) {
	sched, srv := newTestDaemon(t)

	// A run long enough to be observed mid-flight, then a tiny one.
	first := submit(t, srv.URL, genInline("fifo", 64, "10s"))
	second := submit(t, srv.URL, tinySpec)

	// While the first run is live, the second must sit queued: the
	// worker slots of the in-flight campaign are never shared.
	h := sched.Hub(first)
	ch, cancel := h.subscribe()
	sawRunning := false
	for e := range ch {
		if e.Type == "state" && e.State == StateRunning {
			sawRunning = true
			var st struct{ State string }
			getJSON(t, srv.URL+"/runs/"+second, &st)
			if st.State != StateQueued {
				t.Errorf("second run is %q while first is running, want queued", st.State)
			}
			break
		}
		if e.Final {
			break
		}
	}
	cancel()
	if !sawRunning {
		t.Fatal("never observed the first run in running state")
	}
	waitFinal(t, sched, first, StateDone)
	waitFinal(t, sched, second, StateDone)

	// A storm of concurrent clients: unique IDs, all completed.
	const clients = 8
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = submit(t, srv.URL, tinySpec)
		}(i)
	}
	wg.Wait()
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate run id %s", id)
		}
		seen[id] = true
		waitFinal(t, sched, id, StateDone)
	}
	// Identical specs land on identical result bytes.
	want, err := sched.Store().ReadResult(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[1:] {
		got, err := sched.Store().ReadResult(id)
		if err != nil {
			t.Fatal(err)
		}
		// Result bytes embed the run ID; compare with it factored out.
		if string(normalizeID(got, id)) != string(normalizeID(want, ids[0])) {
			t.Errorf("run %s result diverges from %s", id, ids[0])
		}
	}
}

func normalizeID(doc []byte, id string) []byte {
	return []byte(strings.ReplaceAll(string(doc), `"id":"`+id+`"`, `"id":"rXXXXXX"`))
}

// TestServerMergeShards submits a sharded campaign and merges it over
// POST /merge: the merged text must equal the unsharded run's.
func TestServerMergeShards(t *testing.T) {
	sched, srv := newTestDaemon(t)
	base := `"universe":{"kind":"caps-single-fault","horizon":"30ms"},"workers":2`
	s0 := submit(t, srv.URL, `{"campaign":"m","shard":"0/2",`+base+`}`)
	s1 := submit(t, srv.URL, `{"campaign":"m","shard":"1/2",`+base+`}`)
	whole := submit(t, srv.URL, `{"campaign":"m",`+base+`}`)
	for _, id := range []string{s0, s1, whole} {
		waitFinal(t, sched, id, StateDone)
	}

	mergeReq := fmt.Sprintf(`{"campaign":"m","universe":{"kind":"caps-single-fault","horizon":"30ms"},"runs":[%q,%q]}`, s0, s1)
	resp, err := http.Post(srv.URL+"/merge", "application/json", strings.NewReader(mergeReq))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /merge = %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var merged ResultDoc
	if err := json.NewDecoder(resp.Body).Decode(&merged); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var wholeDoc ResultDoc
	getJSON(t, srv.URL+"/runs/"+whole+"/result", &wholeDoc)
	if merged.Text == "" {
		t.Fatal("merged result has no text")
	}
	// The shard summaries differ only in the shard line the unsharded
	// run does not print; tallies and outcomes must match exactly.
	if fmt.Sprint(merged.Tally) != fmt.Sprint(wholeDoc.Tally) {
		t.Errorf("merged tally %v != unsharded %v", merged.Tally, wholeDoc.Tally)
	}
	if len(merged.Outcomes) != len(wholeDoc.Outcomes) {
		t.Fatalf("merged %d outcomes, unsharded %d", len(merged.Outcomes), len(wholeDoc.Outcomes))
	}
	for i := range merged.Outcomes {
		if merged.Outcomes[i] != wholeDoc.Outcomes[i] {
			t.Errorf("outcome %d: merged %+v != unsharded %+v", i, merged.Outcomes[i], wholeDoc.Outcomes[i])
		}
	}

	// Merging an unknown run is a structured conflict, not a panic.
	badReq := fmt.Sprintf(`{"campaign":"m","universe":{"kind":"caps-single-fault","horizon":"30ms"},"runs":[%q,"r000099"]}`, s0)
	resp, err = http.Post(srv.URL+"/merge", "application/json", strings.NewReader(badReq))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("merge with unknown run = %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServerRejectsGarbage hammers the submission surface with
// malformed bodies: every one is a structured 4xx, none panics the
// daemon, and a valid submission still works afterwards.
func TestServerRejectsGarbage(t *testing.T) {
	sched, srv := newTestDaemon(t)
	bad := []string{
		``,
		`not json`,
		`[]`,
		`{"wat":1}`,
		`{"universe":{"kind":"exotic"}}`,
		`{"universe":{"horizon":"never"}}`,
		`{"universe":{"horizon":"999s"}}`,
		`{"universe":{"inject":"90ms"}}`,
		`{"universe":{},"workers":123456}`,
		`{"universe":{},"workers":-7}`,
		`{"universe":{},"shard":"9/4"}`,
		`{"universe":{},"shard":"0/9999"}`,
		`{"universe":{},"scenario_timeout":"2h"}`,
		`{"universe":{"kind":"inline","scenarios":[]}}`,
		`{"universe":{"kind":"inline","scenarios":[{"id":"","faults":"x"}]}}`,
		`{"universe":{"kind":"inline","scenarios":[{"id":"a","faults":"gibberish"}]}}`,
		`{"universe":{"kind":"inline","scenarios":[{"id":"a","faults":"open @caps.accel0.harness from 1ms"},{"id":"a","faults":"open @caps.accel0.harness from 2ms"}]}}`,
		`{"universe":{"kind":"inline","inject":"1ms","scenarios":[{"id":"a","faults":"open @caps.accel0.harness from 1ms"}]}}`,
		`{"universe":{"kind":"caps-single-fault","scenarios":[{"id":"a","faults":"open @caps.accel0.harness from 1ms"}]}}`,
		`{"universe":{}} trailing`,
		`{"campaign":"` + strings.Repeat("x", 200) + `","universe":{}}`,
		"{\"campaign\":\"a\u0001b\",\"universe\":{}}",
	}
	for _, body := range bad {
		resp, err := http.Post(srv.URL+"/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %q: %v", body, err)
		}
		data := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q = %d, want 400; body: %s", body, resp.StatusCode, data)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(data), &e); err != nil || e.Error == "" {
			t.Errorf("POST %q: error body is not structured: %s", body, data)
		}
	}

	// An over-limit body is rejected by size, not parsed.
	huge := `{"campaign":"` + strings.Repeat("x", MaxSpecBytes) + `","universe":{}}`
	resp, err := http.Post(srv.URL+"/runs", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized spec = %d, want 413", resp.StatusCode)
	}
	resp.Body.Close()

	// The daemon survived all of it.
	id := submit(t, srv.URL, tinySpec)
	waitFinal(t, sched, id, StateDone)
}

func getJSON(t testing.TB, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func readAll(t testing.TB, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
