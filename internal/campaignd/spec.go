// Package campaignd implements the capsimd campaign service: the
// long-running daemon that turns one-shot capsim invocations into a
// queued, durable, streamable workflow. A client POSTs a campaign
// spec and gets a run ID; a FIFO scheduler feeds a persistent
// executor whose virtual-prototype runners — kernel/prototype slot
// pools and golden-run checkpoint sessions included — stay warm
// *across* runs, amortizing elaboration the way the in-process reuse
// engine amortizes it across scenarios. Every run's journal lives
// under the daemon's data directory, so an in-flight campaign
// survives a daemon crash and resumes on restart, and completed
// results are served and merged from the same store.
package campaignd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stressor"
)

// Universe kinds accepted in a Spec.
const (
	// KindCAPSSingleFault is the exhaustive single-fault universe of
	// the CAPS prototype — the same universe `capsim -campaign` runs.
	KindCAPSSingleFault = "caps-single-fault"
	// KindInline runs client-supplied scenarios (textual fault
	// descriptions in the fault.ParseDescriptor syntax) on the CAPS
	// prototype.
	KindInline = "inline"
)

// Decoder hardening bounds. A spec is client input: every numeric
// knob is range-checked and every collection is size-capped before
// the scheduler spends a single simulation cycle on it.
const (
	// MaxSpecBytes bounds the request body of POST /runs and /merge.
	MaxSpecBytes = 1 << 20
	// MaxWorkers bounds the per-run worker pool request.
	MaxWorkers = 1024
	// MaxInlineScenarios bounds a KindInline universe.
	MaxInlineScenarios = 4096
	// MaxShardCount bounds Spec.Shard's partition count.
	MaxShardCount = 4096
	// MaxHorizon bounds the simulated horizon (and injection time).
	MaxHorizon = 10 * sim.Second
	// MaxScenarioTimeout bounds the per-scenario wall-clock budget.
	MaxScenarioTimeout = time.Hour
	// MaxNoveltyBudget bounds the adaptive simulated-run budget.
	MaxNoveltyBudget = 1 << 16
	// maxNameLen bounds the campaign label.
	maxNameLen = 128
)

// Spec is the campaign description POSTed to /runs. The JSON knobs
// mirror capsim's campaign flags one for one, so a spec and a capsim
// command line describe — and produce — the identical campaign.
type Spec struct {
	// Campaign labels the run (journals, metrics, trace spans).
	// Defaults to "capsimd".
	Campaign string `json:"campaign,omitempty"`
	// Universe selects the scenario universe.
	Universe UniverseSpec `json:"universe"`
	// Workers sizes the in-run worker pool: 0 sequential, -1 one per
	// CPU, N > 0 a pool of N (capsim -workers).
	Workers int `json:"workers,omitempty"`
	// Dedup collapses scenarios with identical fault content
	// (capsim -dedup).
	Dedup bool `json:"dedup,omitempty"`
	// Checkpoints forks scenarios off golden-run snapshots
	// (capsim -checkpoints). The daemon keeps the checkpoint sessions
	// alive across runs.
	Checkpoints bool `json:"checkpoints,omitempty"`
	// CheckpointTree retains a tree of golden-prefix snapshots and
	// forks each scenario from the deepest shared one
	// (capsim -checkpoint-tree). Implies checkpoints.
	CheckpointTree bool `json:"checkpoint_tree,omitempty"`
	// EarlyExit terminates a run the moment its state hash re-converges
	// with the golden trajectory (capsim -early-exit). Implies
	// checkpoints.
	EarlyExit bool `json:"early_exit,omitempty"`
	// HashStride is the golden-trajectory hashing interval for
	// EarlyExit, e.g. "5ms" (capsim -hash-stride; default horizon/16).
	HashStride string `json:"hash_stride,omitempty"`
	// StopOnFirst aborts at the first unhandled failure.
	StopOnFirst bool `json:"stop_on_first,omitempty"`
	// Shard restricts the run to one partition, "i/N" (capsim -shard).
	Shard string `json:"shard,omitempty"`
	// ScenarioTimeout bounds each scenario's wall-clock time, in Go
	// duration syntax, e.g. "2s" (capsim -scenario-timeout).
	ScenarioTimeout string `json:"scenario_timeout,omitempty"`
	// Trace records a Chrome trace-event timeline of the run (one span
	// per scenario on its worker's row), downloadable at
	// GET /runs/{id}/trace once the run completes — and streamable
	// live while it executes.
	Trace bool `json:"trace,omitempty"`
	// Adaptive drives the run with the novelty-adaptive strategy
	// instead of the fixed universe (capsim -adaptive). The universe
	// kind must generate fault descriptors (KindCAPSSingleFault), and
	// the fixed-universe optimizations — dedup, sharding, checkpoints,
	// early exit, stop-on-first, per-scenario timeouts, tracing — do
	// not compose with the feedback loop and are rejected.
	Adaptive bool `json:"adaptive,omitempty"`
	// NoveltyBudget is the adaptive simulated-run budget
	// (capsim -novelty-budget; default 64).
	NoveltyBudget int `json:"novelty_budget,omitempty"`
	// NoveltySeed seeds the adaptive strategy's RNG
	// (capsim -novelty-seed; default 1).
	NoveltySeed int64 `json:"novelty_seed,omitempty"`

	// Parsed forms, populated by Validate.
	horizon sim.Time
	inject  sim.Time
	stride  sim.Time
	shard   stressor.Shard
	timeout time.Duration
}

// UniverseSpec selects and parameterizes the scenario universe.
type UniverseSpec struct {
	// Kind is KindCAPSSingleFault (default) or KindInline.
	Kind string `json:"kind,omitempty"`
	// World is the environment: "normal" (default) or "crash".
	World string `json:"world,omitempty"`
	// Unprotected disables the safety mechanisms.
	Unprotected bool `json:"unprotected,omitempty"`
	// Horizon is the simulated duration, e.g. "80ms" (default).
	Horizon string `json:"horizon,omitempty"`
	// Inject is the fault activation time of the generated universe,
	// e.g. "10ms" (default). Ignored for KindInline.
	Inject string `json:"inject,omitempty"`
	// Scenarios lists the inline scenarios (KindInline only).
	Scenarios []InlineScenario `json:"scenarios,omitempty"`
}

// InlineScenario is one client-supplied scenario: an ID and a
// semicolon-separated fault description list.
type InlineScenario struct {
	ID     string `json:"id"`
	Faults string `json:"faults"`
}

// ParseSpec decodes, defaults and validates a spec. Unknown fields
// and trailing garbage are rejected — a typo'd knob must fail the
// submission, not silently run a different campaign.
func ParseSpec(data []byte) (*Spec, error) {
	if len(data) > MaxSpecBytes {
		return nil, fmt.Errorf("campaignd: spec exceeds %d bytes", MaxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	s := &Spec{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("campaignd: bad spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("campaignd: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Validate defaults and range-checks every knob, parsing the textual
// durations and the shard into their executable forms.
func (s *Spec) Validate() error {
	if s.Campaign == "" {
		s.Campaign = "capsimd"
	}
	if len(s.Campaign) > maxNameLen {
		return fmt.Errorf("campaignd: campaign name exceeds %d bytes", maxNameLen)
	}
	for _, r := range s.Campaign {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("campaignd: campaign name contains control characters")
		}
	}
	if s.Workers < stressor.WorkersAuto || s.Workers > MaxWorkers {
		return fmt.Errorf("campaignd: workers %d out of range %d..%d", s.Workers, stressor.WorkersAuto, MaxWorkers)
	}
	u := &s.Universe
	if u.Kind == "" {
		u.Kind = KindCAPSSingleFault
	}
	if u.World == "" {
		u.World = "normal"
	}
	if u.World != "normal" && u.World != "crash" {
		return fmt.Errorf("campaignd: unknown world %q (want normal or crash)", u.World)
	}
	if u.Horizon == "" {
		u.Horizon = "80ms"
	}
	horizon, err := fault.ParseDuration(u.Horizon)
	if err != nil {
		return fmt.Errorf("campaignd: horizon: %w", err)
	}
	if horizon <= 0 || horizon > MaxHorizon {
		return fmt.Errorf("campaignd: horizon %s out of range (0, %v]", u.Horizon, MaxHorizon)
	}
	s.horizon = horizon
	switch u.Kind {
	case KindCAPSSingleFault:
		if len(u.Scenarios) > 0 {
			return fmt.Errorf("campaignd: universe kind %q does not take inline scenarios", u.Kind)
		}
		if u.Inject == "" {
			u.Inject = "10ms"
		}
		inject, err := fault.ParseDuration(u.Inject)
		if err != nil {
			return fmt.Errorf("campaignd: inject: %w", err)
		}
		if inject <= 0 || inject >= horizon {
			return fmt.Errorf("campaignd: inject %s out of range (0, horizon)", u.Inject)
		}
		s.inject = inject
	case KindInline:
		if u.Inject != "" {
			return fmt.Errorf("campaignd: universe kind %q does not take an inject time", u.Kind)
		}
		if n := len(u.Scenarios); n == 0 || n > MaxInlineScenarios {
			return fmt.Errorf("campaignd: inline universe needs 1..%d scenarios, got %d", MaxInlineScenarios, n)
		}
		seen := make(map[string]bool, len(u.Scenarios))
		for i, is := range u.Scenarios {
			if is.ID == "" {
				return fmt.Errorf("campaignd: inline scenario %d without id", i)
			}
			if len(is.ID) > maxNameLen {
				return fmt.Errorf("campaignd: inline scenario %d id exceeds %d bytes", i, maxNameLen)
			}
			if seen[is.ID] {
				return fmt.Errorf("campaignd: duplicate inline scenario id %q", is.ID)
			}
			seen[is.ID] = true
			sc, err := fault.ParseScenario(is.ID, is.Faults)
			if err != nil {
				return fmt.Errorf("campaignd: inline scenario %q: %w", is.ID, err)
			}
			if err := sc.Validate(); err != nil {
				return fmt.Errorf("campaignd: inline scenario %q: %w", is.ID, err)
			}
		}
	default:
		return fmt.Errorf("campaignd: unknown universe kind %q", u.Kind)
	}
	if s.Shard != "" {
		sh, err := stressor.ParseShard(s.Shard)
		if err != nil {
			return fmt.Errorf("campaignd: %w", err)
		}
		if sh.Count > MaxShardCount {
			return fmt.Errorf("campaignd: shard count %d exceeds %d", sh.Count, MaxShardCount)
		}
		s.shard = sh
	} else {
		s.shard = stressor.Shard{}
	}
	if s.CheckpointTree || s.EarlyExit {
		// Tree and early-exit modes build on checkpoint sessions, the
		// same way capsim's flags imply -checkpoints.
		s.Checkpoints = true
	}
	if s.HashStride != "" {
		if !s.EarlyExit {
			return fmt.Errorf("campaignd: hash_stride set without early_exit")
		}
		stride, err := fault.ParseDuration(s.HashStride)
		if err != nil {
			return fmt.Errorf("campaignd: hash_stride: %w", err)
		}
		if stride <= 0 || stride > horizon {
			return fmt.Errorf("campaignd: hash_stride %s out of range (0, horizon]", s.HashStride)
		}
		s.stride = stride
	} else {
		s.stride = 0
	}
	if s.Adaptive {
		incompatible := []struct {
			name string
			on   bool
		}{
			{"dedup", s.Dedup}, {"checkpoints", s.Checkpoints},
			{"checkpoint_tree", s.CheckpointTree}, {"early_exit", s.EarlyExit},
			{"hash_stride", s.HashStride != ""}, {"stop_on_first", s.StopOnFirst},
			{"shard", s.Shard != ""}, {"scenario_timeout", s.ScenarioTimeout != ""},
			{"trace", s.Trace},
		}
		for _, f := range incompatible {
			if f.on {
				return fmt.Errorf("campaignd: %s cannot be combined with adaptive", f.name)
			}
		}
		if u.Kind != KindCAPSSingleFault {
			return fmt.Errorf("campaignd: adaptive requires universe kind %q", KindCAPSSingleFault)
		}
		if s.NoveltyBudget == 0 {
			s.NoveltyBudget = 64
		}
		if s.NoveltyBudget < 1 || s.NoveltyBudget > MaxNoveltyBudget {
			return fmt.Errorf("campaignd: novelty_budget %d out of range 1..%d", s.NoveltyBudget, MaxNoveltyBudget)
		}
		if s.NoveltySeed == 0 {
			s.NoveltySeed = 1
		}
	} else if s.NoveltyBudget != 0 || s.NoveltySeed != 0 {
		return fmt.Errorf("campaignd: novelty_budget/novelty_seed only apply with adaptive")
	}
	if s.ScenarioTimeout != "" {
		d, err := time.ParseDuration(s.ScenarioTimeout)
		if err != nil {
			return fmt.Errorf("campaignd: scenario_timeout: %w", err)
		}
		if d < 0 || d > MaxScenarioTimeout {
			return fmt.Errorf("campaignd: scenario_timeout %s out of range [0, %v]", s.ScenarioTimeout, MaxScenarioTimeout)
		}
		s.timeout = d
	} else {
		s.timeout = 0
	}
	return nil
}

// RunnerKey identifies the virtual-prototype configuration a spec
// needs. Specs with equal keys share one warm runner (and its slot
// pool and checkpoint sessions) across daemon runs; the key
// deliberately excludes everything that does not shape the prototype
// itself (inject time, workers, shard, ...).
func (s *Spec) RunnerKey() string {
	return fmt.Sprintf("caps|%s|unprotected=%v|horizon=%d", s.Universe.World, s.Universe.Unprotected, s.horizon)
}

// BuildRunner constructs the CAPS runner for this spec's prototype
// configuration (one golden run included). Callers cache the result
// under RunnerKey.
func (s *Spec) BuildRunner() (*caps.Runner, error) {
	cfg := caps.Protected()
	if s.Universe.Unprotected {
		cfg = caps.Unprotected()
	}
	w := caps.NormalDriving()
	if s.Universe.World == "crash" {
		w = caps.CrashAt(sim.MS(20))
	}
	return caps.NewRunner(cfg, w, s.horizon)
}

// Scenarios materializes the spec's scenario universe on the given
// runner. For KindCAPSSingleFault this is exactly the universe capsim
// enumerates, so the run — and its journal header — is interchangeable
// with the CLI's.
func (s *Spec) Scenarios(r *caps.Runner) ([]fault.Scenario, error) {
	switch s.Universe.Kind {
	case KindCAPSSingleFault:
		return fault.Singles(r.Universe(s.inject)), nil
	case KindInline:
		out := make([]fault.Scenario, 0, len(s.Universe.Scenarios))
		for _, is := range s.Universe.Scenarios {
			sc, err := fault.ParseScenario(is.ID, is.Faults)
			if err != nil {
				return nil, fmt.Errorf("campaignd: inline scenario %q: %w", is.ID, err)
			}
			out = append(out, sc)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("campaignd: unknown universe kind %q", s.Universe.Kind)
	}
}

// ShardSpec returns the parsed shard (zero value when unsharded).
func (s *Spec) ShardSpec() stressor.Shard { return s.shard }

// Horizon returns the parsed simulated horizon.
func (s *Spec) Horizon() sim.Time { return s.horizon }

// Timeout returns the parsed per-scenario wall-clock budget.
func (s *Spec) Timeout() time.Duration { return s.timeout }

// Stride returns the parsed early-exit hash stride (0 = default).
func (s *Spec) Stride() sim.Time { return s.stride }

// Inline reports whether the universe is client-supplied.
func (s *Spec) Inline() bool { return s.Universe.Kind == KindInline }
