package campaignd

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stressor"
)

// Summary renders the campaign summary block exactly as cmd/capsim
// prints it. capsim and the daemon's text result share this one
// renderer, which is what makes "POST the spec to the daemon" and
// "run the equivalent capsim command line" byte-identical — the
// property the goldenfile harness pins.
type Summary struct {
	// World and Protected echo the prototype configuration.
	World     string
	Protected bool
	// Scenarios is the universe size, Workers the requested pool size
	// (as given: -1 means one per CPU).
	Scenarios int
	Workers   int
	// Inline marks a client-supplied universe (daemon only; capsim
	// always runs the generated single-fault universe).
	Inline bool
	// Shard is printed when it actually partitions.
	Shard stressor.Shard
	// Halted marks an interrupted campaign (resumable via journal).
	Halted bool
	// Result is the finished (possibly partial) campaign.
	Result *stressor.Result
}

// WriteText writes the summary block to w.
func (s Summary) WriteText(w io.Writer) {
	noun := "single-fault scenarios"
	if s.Inline {
		noun = "inline scenarios"
	}
	fmt.Fprintf(w, "world:     %s\n", s.World)
	fmt.Fprintf(w, "config:    protected=%v\n", s.Protected)
	fmt.Fprintf(w, "campaign:  %d %s, workers=%d\n", s.Scenarios, noun, s.Workers)
	if s.Shard.Enabled() {
		fmt.Fprintf(w, "shard:     %s\n", s.Shard)
	}
	if s.Halted {
		fmt.Fprintf(w, "halted:    %d outcomes recorded; rerun with -resume to continue\n", len(s.Result.Outcomes))
	}
	fmt.Fprintf(w, "tally:     %s\n", s.Result.Tally)
	if s.Result.DedupSavedRuns > 0 {
		fmt.Fprintf(w, "dedup:     %d duplicate runs skipped\n", s.Result.DedupSavedRuns)
	}
	if o, ok := s.Result.FirstFailure(); ok {
		fmt.Fprintf(w, "first failure at run %d: %s\n", s.Result.RunsToFirstFailure, o.Scenario.ID)
	}
}

// Text renders the summary block as a string.
func (s Summary) Text() string {
	var b strings.Builder
	s.WriteText(&b)
	return b.String()
}
