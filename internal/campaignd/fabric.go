package campaignd

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"

	"repro/internal/caps"
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/stressor"
)

// This file bridges campaignd's spec language to the distributed
// campaign fabric: the capsim-coord and capsim-worker CLIs accept the
// exact spec JSON that POST /runs accepts, so one campaign description
// drives the one-shot CLI, the daemon and the distributed fabric — and
// all three produce the identical merged result.

// ValidateFabricSpec re-checks a parsed spec for distributed
// execution. The fabric owns the partitioning and the merged result,
// so the single-process knobs that conflict with it are rejected here
// instead of silently misbehaving on a worker.
func ValidateFabricSpec(s *Spec) error {
	if s.Shard != "" {
		return fmt.Errorf("campaignd: spec shard %q conflicts with fabric sharding (use capsim-coord -shards)", s.Shard)
	}
	if s.Trace {
		return fmt.Errorf("campaignd: trace is not supported for distributed runs")
	}
	return nil
}

// MaterializeSpec parses and validates raw spec JSON for fabric use
// and materializes its scenario universe. The returned runner is the
// caller's to Close; the coordinator only needs it long enough to
// enumerate the universe.
func MaterializeSpec(raw []byte) (*Spec, *caps.Runner, []fault.Scenario, error) {
	spec, err := ParseSpec(raw)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := ValidateFabricSpec(spec); err != nil {
		return nil, nil, nil, err
	}
	runner, err := spec.BuildRunner()
	if err != nil {
		return nil, nil, nil, err
	}
	scenarios, err := spec.Scenarios(runner)
	if err != nil {
		runner.Close()
		return nil, nil, nil, err
	}
	return spec, runner, scenarios, nil
}

// FabricText renders the merged result exactly as capsim prints its
// campaign summary — the byte-identical block the goldenfile harness
// pins across capsim, capsimd and the fabric.
func FabricText(spec *Spec, scenarios int) func(*stressor.Result) string {
	return func(res *stressor.Result) string {
		return Summary{
			World: spec.Universe.World, Protected: !spec.Universe.Unprotected,
			Scenarios: scenarios, Workers: spec.Workers,
			Inline: spec.Inline(), Result: res,
		}.Text()
	}
}

// FabricResolver materializes lease specs for a fabric worker. Warm
// runners are cached by RunnerKey for the life of the worker — the
// same amortization the daemon's runner cache provides, so successive
// leases (and successive campaigns against one long-lived worker) skip
// prototype elaboration and the golden run.
func FabricResolver(log *slog.Logger) fabric.Resolver {
	var mu sync.Mutex
	runners := map[string]*caps.Runner{}
	return func(raw json.RawMessage) (*fabric.Resolved, error) {
		spec, err := ParseSpec(raw)
		if err != nil {
			return nil, err
		}
		if err := ValidateFabricSpec(spec); err != nil {
			return nil, err
		}
		key := spec.RunnerKey()
		mu.Lock()
		runner := runners[key]
		mu.Unlock()
		if runner == nil {
			if runner, err = spec.BuildRunner(); err != nil {
				return nil, err
			}
			mu.Lock()
			if prev := runners[key]; prev != nil {
				// Lost a build race; keep the first.
				runner.Close()
				runner = prev
			} else {
				runners[key] = runner
			}
			mu.Unlock()
			if log != nil {
				log.Info("runner built", "key", key)
			}
		}
		scenarios, err := spec.Scenarios(runner)
		if err != nil {
			return nil, err
		}
		c := &stressor.Campaign{
			Run:             runner.RunFunc(),
			Workers:         spec.Workers,
			ScenarioTimeout: spec.Timeout(),
		}
		if spec.Checkpoints {
			c.Checkpoints = true
			c.Checkpointer = runner
			c.CheckpointTree = spec.CheckpointTree
			c.EarlyExit = spec.EarlyExit
			c.HashStride = spec.Stride()
		}
		return &fabric.Resolved{Scenarios: scenarios, Campaign: c}, nil
	}
}
