package campaignd

import (
	"fmt"
	"testing"
)

// BenchmarkDaemonRunTurnaround measures the submit-to-done latency of
// one campaign through the scheduler, allocation-pinned. The warm
// case rides one cached runner (and its parked checkpoint sessions)
// for every iteration; the cold case alternates two prototype
// configurations through a cache of one, forcing a rebuild — golden
// run included — on every submission. The gap is the cross-run
// amortization the daemon exists to provide.
func BenchmarkDaemonRunTurnaround(b *testing.B) {
	spec := func(horizon string) string {
		return fmt.Sprintf(`{"campaign":"bench","universe":{"kind":"caps-single-fault","horizon":%q},"workers":2,"checkpoints":true}`, horizon)
	}

	b.Run("warm", func(b *testing.B) {
		sched, err := NewScheduler(Config{DataDir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		sched.Start()
		defer sched.Stop()
		raw := spec("30ms")
		runToCompletion(b, sched, raw) // prime the runner cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runToCompletion(b, sched, raw)
		}
		b.StopTimer()
		builds, hits := sched.RunnerCacheStats()
		b.ReportMetric(float64(builds), "builds")
		b.ReportMetric(float64(hits)/float64(b.N+1), "cache-hits/run")
	})

	b.Run("cold", func(b *testing.B) {
		sched, err := NewScheduler(Config{DataDir: b.TempDir(), RunnerCacheCap: 1})
		if err != nil {
			b.Fatal(err)
		}
		sched.Start()
		defer sched.Stop()
		// Alternating horizons have distinct runner keys, so a cache
		// of one evicts and rebuilds the prototype every run.
		raws := []string{spec("30ms"), spec("29ms")}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runToCompletion(b, sched, raws[i%2])
		}
		b.StopTimer()
		builds, _ := sched.RunnerCacheStats()
		b.ReportMetric(float64(builds), "builds")
	})
}
