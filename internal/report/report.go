// Package report renders experiment results as aligned text tables
// and CSV — the output format of the benchmark harness and the
// vpsafety CLI.
package report

import (
	"fmt"
	"strings"
)

// Table is one experiment result table.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, stringifying each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// A row may carry more cells than Columns; render the
			// overflow with zero width instead of panicking.
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cells[i] = esc(c)
	}
	b.WriteString(strings.Join(cells, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		out := make([]string, len(row))
		for i, c := range row {
			out[i] = esc(c)
		}
		b.WriteString(strings.Join(out, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
