package report

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// MetricsTable renders a slice of metric snapshots (obs.Registry
// .Snapshot, possibly filtered) as a result table — the renderer the
// experiment harness uses for its wall-clock attribution tables.
// Counter and gauge rows fill only the value column; histogram rows
// add count/mean/min/max plus p50/p99 estimated from the exponential
// buckets. Metrics whose name ends in "_ns" are nanosecond quantities
// and render as milliseconds.
func MetricsTable(title string, metrics []obs.Metric) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"metric", "kind", "value", "count", "mean", "min", "p50", "p99", "max"},
	}
	for _, m := range metrics {
		ns := len(m.Name) > 3 && m.Name[len(m.Name)-3:] == "_ns"
		val := func(v float64) string {
			if ns {
				return fmt.Sprintf("%.3gms", v/float64(time.Millisecond))
			}
			return fmt.Sprintf("%.4g", v)
		}
		switch m.Kind {
		case "histogram":
			t.AddRow(m.Full, m.Kind, val(float64(m.Sum)), m.Count,
				val(m.Mean), val(float64(m.Min)),
				val(float64(m.Quantile(0.5))), val(float64(m.Quantile(0.99))),
				val(float64(m.Max)))
		default:
			t.AddRow(m.Full, m.Kind, val(m.Value), "", "", "", "", "", "")
		}
	}
	return t
}
