package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "demo",
		Note:    "a note",
		Columns: []string{"name", "count"},
	}
	t.AddRow("alpha", 3)
	t.AddRow("a,b\"c", 0.25)
	return t
}

func TestRenderAlignment(t *testing.T) {
	out := sample().Render()
	for _, want := range []string{"== demo ==", "a note", "name", "count", "alpha", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header and rows align on the widest cell.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestAddRowFloatFormat(t *testing.T) {
	tb := &Table{Columns: []string{"v"}}
	tb.AddRow(0.123456)
	if tb.Rows[0][0] != "0.123" {
		t.Errorf("float cell = %q", tb.Rows[0][0])
	}
}

// TestRenderRaggedRow is the regression test for the
// index-out-of-range panic: AddRow with more cells than Columns must
// render (extra cells at zero width) and round-trip through CSV, not
// panic.
func TestRenderRaggedRow(t *testing.T) {
	tb := &Table{Title: "ragged", Columns: []string{"a", "b"}}
	tb.AddRow("x", "y", "overflow", "more")
	tb.AddRow("only-one")
	out := tb.Render()
	for _, want := range []string{"x", "y", "overflow", "more", "only-one"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "x,y,overflow,more") {
		t.Errorf("CSV lost overflow cells:\n%s", csv)
	}
}

func TestCSVEscaping(t *testing.T) {
	out := sample().CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "name,count" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, `"a,b""c"`) {
		t.Errorf("quoting wrong:\n%s", out)
	}
}
