package report

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestMetricsTable(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("campaign.runs", obs.L("campaign", "e8")).Add(156)
	reg.Gauge("campaign.worker_utilization").Set(0.83)
	h := reg.Histogram("exp.phase_ns", obs.L("phase", "campaign"))
	h.Observe(2_000_000) // 2ms
	h.Observe(4_000_000) // 4ms

	tb := MetricsTable("attribution", reg.Snapshot())
	out := tb.Render()
	for _, want := range []string{
		"== attribution ==",
		"campaign.runs{campaign=e8}", "counter", "156",
		"gauge", "0.83",
		"exp.phase_ns{phase=campaign}", "histogram", "6ms", "3ms", // sum, mean
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics table missing %q:\n%s", want, out)
		}
	}
	if len(tb.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(tb.Rows))
	}
}
