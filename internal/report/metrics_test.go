package report

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestMetricsTable(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("campaign.runs", obs.L("campaign", "e8")).Add(156)
	reg.Gauge("campaign.worker_utilization").Set(0.83)
	h := reg.Histogram("exp.phase_ns", obs.L("phase", "campaign"))
	h.Observe(2_000_000) // 2ms
	h.Observe(4_000_000) // 4ms

	tb := MetricsTable("attribution", reg.Snapshot())
	out := tb.Render()
	for _, want := range []string{
		"== attribution ==",
		"campaign.runs{campaign=e8}", "counter", "156",
		"gauge", "0.83",
		"exp.phase_ns{phase=campaign}", "histogram", "6ms", "3ms", // sum, mean
		"p50", "p99",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics table missing %q:\n%s", want, out)
		}
	}
	if len(tb.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(tb.Rows))
	}
}

// TestMetricsTableQuantiles: the histogram row's p50/p99 come from the
// bucket estimator and stay inside [min, max].
func TestMetricsTableQuantiles(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("dur")
	for v := 1; v <= 1000; v++ {
		h.Observe(uint64(v))
	}
	snap := reg.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot = %d metrics", len(snap))
	}
	p50, p99 := snap[0].Quantile(0.5), snap[0].Quantile(0.99)
	if p50 < 250 || p50 > 1000 || p99 < p50 || p99 > 1000 {
		t.Errorf("p50=%d p99=%d from uniform 1..1000", p50, p99)
	}
	out := MetricsTable("q", snap).Render()
	for _, want := range []string{"p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
