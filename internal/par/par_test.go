package par

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct{ in, want int }{
		{0, 0},
		{1, 1},
		{7, 7},
		{Auto, maxprocs},
		{-5, maxprocs},
	}
	for _, c := range cases {
		if got := Resolve(c.in); got != c.want {
			t.Errorf("Resolve(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	want := make([]int, 100)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{0, 1, 3, 8, Auto} {
		got := Map(workers, len(want), func(i int) int { return i * i })
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: Map out of order: %v", workers, got)
		}
	}
}

func TestMapRunsEveryIndexOnce(t *testing.T) {
	const n = 257
	var counts [n]int32
	Map(4, n, func(i int) struct{} {
		atomic.AddInt32(&counts[i], 1)
		return struct{}{}
	})
	for i, c := range counts {
		if c != 1 {
			t.Errorf("index %d ran %d times", i, c)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); len(got) != 0 {
		t.Errorf("Map over empty input = %v", got)
	}
}
