// Package par provides the small worker-pool primitives behind the
// parallel fault-injection campaigns: independent tasks fan out to a
// bounded pool of goroutines and results reassemble in input order,
// so parallel execution is observationally identical to sequential.
// The campaign engine (internal/stressor) and mutation qualification
// (internal/mutation) both build on it.
package par

import "runtime"

// Auto is the sentinel worker count meaning "one worker per available
// CPU" (runtime.GOMAXPROCS).
const Auto = -1

// Resolve maps a Workers knob value to a concrete pool size: 0 stays
// 0 (sequential), Auto and any other negative become GOMAXPROCS, and
// positive values pass through.
func Resolve(workers int) int {
	if workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Map runs fn(i) for every i in [0, n) and returns the results in
// index order. With workers <= 1 it runs sequentially on the calling
// goroutine; otherwise a pool of the given size consumes indices from
// a channel. fn must be safe for concurrent invocation when workers
// exceeds 1.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	indices := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range indices {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)
	for w := 0; w < workers; w++ {
		<-done
	}
	return out
}
