// Package par provides the small worker-pool primitives behind the
// parallel fault-injection campaigns: independent tasks fan out to a
// bounded pool of goroutines and results reassemble in input order,
// so parallel execution is observationally identical to sequential.
// The campaign engine (internal/stressor) and mutation qualification
// (internal/mutation) both build on it.
package par

import "runtime"

// Auto is the sentinel worker count meaning "one worker per available
// CPU" (runtime.GOMAXPROCS).
const Auto = -1

// Resolve maps a Workers knob value to a concrete pool size: 0 stays
// 0 (sequential), Auto and any other negative become GOMAXPROCS, and
// positive values pass through.
func Resolve(workers int) int {
	if workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Map runs fn(i) for every i in [0, n) and returns the results in
// index order. With workers <= 1 it runs sequentially on the calling
// goroutine; otherwise a pool of the given size consumes indices from
// a channel. fn must be safe for concurrent invocation when workers
// exceeds 1.
func Map[T any](workers, n int, fn func(i int) T) []T {
	return MapIndexed(workers, n, func(_, i int) T { return fn(i) })
}

// MapIndexed is Map with the executing worker's id (0..workers-1)
// passed to fn — observability instrumentation uses it to attribute
// work to pool slots (trace rows, per-worker utilization). Sequential
// execution passes worker 0.
func MapIndexed[T any](workers, n int, fn func(worker, i int) T) []T {
	out := make([]T, n)
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(0, i)
		}
		return out
	}
	indices := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := range indices {
				out[i] = fn(w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)
	for w := 0; w < workers; w++ {
		<-done
	}
	return out
}
