package binmut

import (
	"strings"
	"testing"

	"repro/internal/ecu"
)

// saturatingSub computes max(r1-r2, 0) and stores the result: a tiny
// embedded routine with a branch worth mutating.
const saturatingSub = `
	blt r1, r2, zero
	sub r3, r1, r2
	jal r0, done
zero:
	addi r3, r0, 0
done:
	sw r3, 256(r0)
	halt
`

func words(t *testing.T) []uint32 {
	t.Helper()
	w, err := ecu.Assemble(saturatingSub)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateOperators(t *testing.T) {
	mutants := Generate(words(t))
	if len(mutants) == 0 {
		t.Fatal("no mutants")
	}
	ops := map[string]int{}
	for i, m := range mutants {
		if m.ID != i {
			t.Errorf("ID %d at %d", m.ID, i)
		}
		ops[m.Operator]++
	}
	for _, want := range []string{"OPR", "IMM", "DEL"} {
		if ops[want] == 0 {
			t.Errorf("no %s mutants (have %v)", want, ops)
		}
	}
}

func TestGenerateSkipsDataWords(t *testing.T) {
	w, err := ecu.Assemble("halt\n.word 0xffffffff")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Generate(w) {
		if m.WordIndex == 1 {
			t.Errorf("data word mutated: %s", m.Description)
		}
	}
}

func weakSuite() []Test {
	// Only exercises the r1 >= r2 path.
	return []Test{{Regs: map[int]uint32{1: 10, 2: 3}}}
}

func strongSuite() []Test {
	return []Test{
		{Regs: map[int]uint32{1: 10, 2: 3}}, // positive difference
		{Regs: map[int]uint32{1: 3, 2: 10}}, // saturated path
		{Regs: map[int]uint32{1: 7, 2: 7}},  // boundary: equal
		{Regs: map[int]uint32{1: 8, 2: 7}},  // boundary: just above
		{Regs: map[int]uint32{1: 0, 2: 0}},  // zeros
	}
}

func TestQualifyStrongBeatsWeak(t *testing.T) {
	w := words(t)
	weak, err := Qualify(w, weakSuite(), 10000)
	if err != nil {
		t.Fatal(err)
	}
	strong, err := Qualify(w, strongSuite(), 10000)
	if err != nil {
		t.Fatal(err)
	}
	if weak.Total != strong.Total {
		t.Fatalf("totals differ: %d vs %d", weak.Total, strong.Total)
	}
	if strong.Score <= weak.Score {
		t.Errorf("strong %.2f <= weak %.2f", strong.Score, weak.Score)
	}
	if len(weak.Survivors()) <= len(strong.Survivors()) {
		t.Errorf("survivors: weak %d, strong %d", len(weak.Survivors()), len(strong.Survivors()))
	}
	t.Logf("binary mutation: weak %.0f%%, strong %.0f%% of %d mutants",
		weak.Score*100, strong.Score*100, strong.Total)
}

func TestQualifyDetectsBranchMutation(t *testing.T) {
	// The blt -> bge mutant must be killed by any suite covering both
	// branch directions.
	w := words(t)
	rep, err := Qualify(w, strongSuite(), 10000)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		if strings.Contains(res.Mutant.Description, "blt -> bge") && res.Verdict == Survived {
			t.Errorf("branch-inversion mutant survived the strong suite")
		}
	}
}

func TestQualifyEmptySuiteRejected(t *testing.T) {
	if _, err := Qualify(words(t), nil, 1000); err == nil {
		t.Error("empty suite accepted")
	}
}

func TestQualifyGoldenTrapRejected(t *testing.T) {
	// A program that loads from an unmapped address traps in the
	// golden run; Qualify must refuse to score against it.
	w, err := ecu.Assemble("lui r1, 1024\nlw r2, 0(r1)\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Qualify(w, []Test{{}}, 1000); err == nil {
		t.Error("golden trap not reported")
	}
}

func TestRunawayMutantKilledByBound(t *testing.T) {
	// A loop whose exit is ADDI-driven: deleting the increment makes
	// it infinite; the instruction bound must catch it.
	w, err := ecu.Assemble(`
		addi r1, r0, 0
		addi r2, r0, 5
	loop:
		addi r1, r1, 1
		blt  r1, r2, loop
		sw   r1, 256(r0)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Qualify(w, []Test{{}}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	trapKills := 0
	for _, res := range rep.Results {
		if res.Verdict == KilledByTrap {
			trapKills++
		}
	}
	if trapKills == 0 {
		t.Error("no mutants killed by runaway bound")
	}
}

func TestVerdictStrings(t *testing.T) {
	if Survived.String() != "survived" || Killed.String() != "killed" || KilledByTrap.String() != "killed-trap" {
		t.Error("verdict strings")
	}
}

func TestMemPreload(t *testing.T) {
	// Program sums mem[0x200] + mem[0x204] into 0x208.
	w, err := ecu.Assemble(`
		lw r1, 512(r0)
		lw r2, 516(r0)
		add r3, r1, r2
		sw r3, 520(r0)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	tests := []Test{
		{Mem: map[uint64][]byte{0x200: {3, 0, 0, 0}, 0x204: {4, 0, 0, 0}}},
		{Mem: map[uint64][]byte{0x200: {0, 0, 0, 0}, 0x204: {0, 0, 0, 0}}},
	}
	rep, err := Qualify(w, tests, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// add -> sub must be killed by the 3+4 test.
	for _, res := range rep.Results {
		if strings.Contains(res.Mutant.Description, "add -> sub") && res.Verdict == Survived {
			t.Error("add->sub mutant survived")
		}
	}
}
