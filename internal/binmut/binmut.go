// Package binmut implements binary mutation testing for AE32 machine
// code: mutation operators are applied directly to instruction words
// of an assembled program, mutants execute on the virtual CPU, and a
// test suite is scored by its ability to distinguish each mutant's
// observable behaviour (store trace and halt status) from the golden
// binary's.
//
// This reproduces the XEMU line of work cited by the paper — Becker
// et al., "XEMU: an efficient QEMU-based binary mutation testing
// framework for embedded software" [22] and binary mutation through
// dynamic translation [30] — with the AE32 core standing in for the
// QEMU-emulated target.
package binmut

import (
	"fmt"

	"repro/internal/ecu"
	"repro/internal/sim"
	"repro/internal/tlm"
)

// Mutant is one seeded machine-code fault.
type Mutant struct {
	ID int
	// WordIndex is the mutated instruction's position.
	WordIndex int
	// Mutated is the replacement instruction word.
	Mutated uint32
	// Operator classifies the mutation.
	Operator string
	// Description is human-readable.
	Description string
}

// opSwaps maps opcodes to their replacement set.
var opSwaps = map[ecu.Opcode][]ecu.Opcode{
	ecu.OpADD: {ecu.OpSUB},
	ecu.OpSUB: {ecu.OpADD},
	ecu.OpAND: {ecu.OpOR},
	ecu.OpOR:  {ecu.OpAND},
	ecu.OpXOR: {ecu.OpAND},
	ecu.OpSHL: {ecu.OpSHR},
	ecu.OpSHR: {ecu.OpSHL},
	ecu.OpMUL: {ecu.OpADD},
	ecu.OpBEQ: {ecu.OpBNE},
	ecu.OpBNE: {ecu.OpBEQ},
	ecu.OpBLT: {ecu.OpBGE},
	ecu.OpBGE: {ecu.OpBLT},
}

// Generate enumerates mutants of an assembled program: opcode
// replacement (AOR/ROR at ISA level), immediate perturbation (±1 on
// ADDI and branch offsets), and instruction deletion (SW/ADDI→NOP).
// Words that do not decode (data words) are skipped.
func Generate(words []uint32) []Mutant {
	var out []Mutant
	add := func(idx int, mutated uint32, op, desc string) {
		out = append(out, Mutant{ID: len(out), WordIndex: idx, Mutated: mutated, Operator: op, Description: desc})
	}
	for i, w := range words {
		ins, err := ecu.Decode(w)
		if err != nil {
			continue
		}
		for _, alt := range opSwaps[ins.Op] {
			m := ins
			m.Op = alt
			add(i, ecu.Encode(m), "OPR",
				fmt.Sprintf("word %d: %s -> %s", i, ins.Op, alt))
		}
		switch ins.Op {
		case ecu.OpADDI:
			for _, d := range []int32{1, -1} {
				m := ins
				m.Imm = clampImm(ins.Imm + d)
				if m.Imm != ins.Imm {
					add(i, ecu.Encode(m), "IMM",
						fmt.Sprintf("word %d: addi imm %d -> %d", i, ins.Imm, m.Imm))
				}
			}
			add(i, ecu.Encode(ecu.Instr{Op: ecu.OpNOP}), "DEL",
				fmt.Sprintf("word %d: delete %s", i, ins))
		case ecu.OpBEQ, ecu.OpBNE, ecu.OpBLT, ecu.OpBGE:
			m := ins
			m.Imm = clampImm(ins.Imm + 1)
			if m.Imm != ins.Imm {
				add(i, ecu.Encode(m), "IMM",
					fmt.Sprintf("word %d: branch offset %d -> %d", i, ins.Imm, m.Imm))
			}
		case ecu.OpSW:
			add(i, ecu.Encode(ecu.Instr{Op: ecu.OpNOP}), "DEL",
				fmt.Sprintf("word %d: delete %s", i, ins))
		}
	}
	return out
}

func clampImm(v int32) int32 {
	if v > 2047 {
		return 2047
	}
	if v < -2048 {
		return -2048
	}
	return v
}

// Test is one test vector: initial register values (the program's
// inputs) plus optional data-memory preloads.
type Test struct {
	Regs map[int]uint32
	Mem  map[uint64][]byte
}

// trace is the observable behaviour of one run.
type trace struct {
	stores []storeRec
	halted bool
	trap   bool
}

type storeRec struct{ addr, val uint32 }

func (a *trace) equal(b *trace) bool {
	if a.halted != b.halted || a.trap != b.trap || len(a.stores) != len(b.stores) {
		return false
	}
	for i := range a.stores {
		if a.stores[i] != b.stores[i] {
			return false
		}
	}
	return true
}

// programBase is where binaries load and start.
const programBase = 0x1000

// execute runs a binary against one test and records its trace.
func execute(words []uint32, t Test, maxInstrs uint64) *trace {
	k := sim.NewKernel()
	defer k.Shutdown()
	cpu := ecu.NewCPU("mut")
	ram := tlm.NewMemory("ram", 0, 64*1024)
	bus := tlm.NewRouter("bus")
	bus.MustMap("ram", 0, 64*1024, ram)
	cpu.Bus.Bind(bus)
	ecu.LoadProgram(ram, programBase, words)
	for addr, data := range t.Mem {
		ram.Poke(addr, data)
	}
	cpu.Reset(programBase)
	for r, v := range t.Regs {
		cpu.SetReg(r, v)
	}
	tr := &trace{}
	cpu.StoreHook = func(addr, val uint32) {
		tr.stores = append(tr.stores, storeRec{addr, val})
	}
	k.Thread("cpu", func(ctx *sim.ThreadCtx) {
		qk := tlm.NewQuantumKeeper(ctx, sim.US(100))
		if err := cpu.Run(ctx, qk, maxInstrs); err != nil {
			tr.trap = true
		}
	})
	if err := k.Run(sim.TimeMax); err != nil {
		tr.trap = true
	}
	tr.halted = cpu.Halted()
	return tr
}

// Verdict is a mutant's fate.
type Verdict uint8

const (
	// Survived: no test distinguished the mutant.
	Survived Verdict = iota
	// Killed: a test observed different stores/halt status.
	Killed
	// KilledByTrap: the mutant trapped or ran away where the golden
	// binary did not.
	KilledByTrap
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Survived:
		return "survived"
	case Killed:
		return "killed"
	case KilledByTrap:
		return "killed-trap"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// MutantResult pairs a mutant with its verdict.
type MutantResult struct {
	Mutant      Mutant
	Verdict     Verdict
	KillingTest int // -1 if survived
}

// Report is the binary mutation analysis outcome.
type Report struct {
	Total   int
	Killed  int
	Score   float64
	Results []MutantResult
}

// Survivors lists unkilled mutants.
func (r *Report) Survivors() []Mutant {
	var out []Mutant
	for _, res := range r.Results {
		if res.Verdict == Survived {
			out = append(out, res.Mutant)
		}
	}
	return out
}

// Qualify scores the test suite against every mutant of the binary.
// maxInstrs bounds each run (mutants that break loop exits terminate
// via the bound and count as killed-by-trap when the golden run
// halted).
func Qualify(words []uint32, tests []Test, maxInstrs uint64) (*Report, error) {
	if len(tests) == 0 {
		return nil, fmt.Errorf("binmut: empty test suite")
	}
	golden := make([]*trace, len(tests))
	for i, t := range tests {
		golden[i] = execute(words, t, maxInstrs)
		if golden[i].trap {
			return nil, fmt.Errorf("binmut: golden run of test %d trapped", i)
		}
	}
	mutants := Generate(words)
	rep := &Report{Total: len(mutants)}
	buf := make([]uint32, len(words))
	for _, m := range mutants {
		copy(buf, words)
		buf[m.WordIndex] = m.Mutated
		res := MutantResult{Mutant: m, Verdict: Survived, KillingTest: -1}
		for i, t := range tests {
			tr := execute(buf, t, maxInstrs)
			if tr.trap || (!tr.halted && golden[i].halted) {
				res.Verdict = KilledByTrap
				res.KillingTest = i
				break
			}
			if !tr.equal(golden[i]) {
				res.Verdict = Killed
				res.KillingTest = i
				break
			}
		}
		if res.Verdict != Survived {
			rep.Killed++
		}
		rep.Results = append(rep.Results, res)
	}
	if rep.Total > 0 {
		rep.Score = float64(rep.Killed) / float64(rep.Total)
	}
	return rep, nil
}
