package ams

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

func graph(t *testing.T, k *sim.Kernel) *Graph {
	t.Helper()
	g := NewGraph(k, "g")
	g.Timestep = sim.US(100)
	return g
}

func TestSourceGainProbeChain(t *testing.T) {
	k := sim.NewKernel()
	g := graph(t, k)
	g.MustAdd(NewSource("src", func(t sim.Time) float64 { return 2 }))
	g.MustAdd(NewGain("amp", 3))
	probe := g.MustAdd(NewProbe("probe")).(*Probe)
	g.MustConnect("src", 0, "amp", 0)
	g.MustConnect("amp", 0, "probe", 0)
	if err := g.Elaborate(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.MS(1)); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if len(probe.Samples) < 10 {
		t.Fatalf("samples = %d", len(probe.Samples))
	}
	for _, s := range probe.Samples {
		if s != 6 {
			t.Fatalf("sample = %v, want 6", s)
		}
	}
}

func TestAdder(t *testing.T) {
	k := sim.NewKernel()
	g := graph(t, k)
	g.MustAdd(NewSource("a", func(sim.Time) float64 { return 1.5 }))
	g.MustAdd(NewSource("b", func(sim.Time) float64 { return 2.5 }))
	g.MustAdd(NewAdder("sum"))
	probe := g.MustAdd(NewProbe("p")).(*Probe)
	g.MustConnect("a", 0, "sum", 0)
	g.MustConnect("b", 0, "sum", 1)
	g.MustConnect("sum", 0, "p", 0)
	if err := g.Elaborate(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.US(500)); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if probe.Samples[0] != 4 {
		t.Errorf("sum = %v", probe.Samples[0])
	}
}

func TestLowPassDCGainAndAttenuation(t *testing.T) {
	// DC gain must converge to 1; a fast sine is attenuated.
	k := sim.NewKernel()
	g := graph(t, k)
	dt := g.Timestep
	g.MustAdd(NewSource("dc", func(sim.Time) float64 { return 1 }))
	g.MustAdd(NewLowPass("lp", sim.MS(1), dt))
	probe := g.MustAdd(NewProbe("p")).(*Probe)
	g.MustConnect("dc", 0, "lp", 0)
	g.MustConnect("lp", 0, "p", 0)
	if err := g.Elaborate(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.MS(20)); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	last := probe.Samples[len(probe.Samples)-1]
	if math.Abs(last-1) > 0.01 {
		t.Errorf("DC settles to %v, want ~1", last)
	}

	// High-frequency attenuation.
	k2 := sim.NewKernel()
	g2 := graph(t, k2)
	g2.MustAdd(NewSine("sin", 1, 5000, 0)) // 5 kHz, tau 1 ms -> heavily attenuated
	g2.MustAdd(NewLowPass("lp", sim.MS(1), g2.Timestep))
	probe2 := g2.MustAdd(NewProbe("p")).(*Probe)
	g2.MustConnect("sin", 0, "lp", 0)
	g2.MustConnect("lp", 0, "p", 0)
	if err := g2.Elaborate(); err != nil {
		t.Fatal(err)
	}
	if err := k2.Run(sim.MS(20)); err != nil {
		t.Fatal(err)
	}
	k2.Shutdown()
	peak := 0.0
	for _, s := range probe2.Samples[len(probe2.Samples)/2:] {
		if math.Abs(s) > peak {
			peak = math.Abs(s)
		}
	}
	if peak > 0.3 {
		t.Errorf("5 kHz peak through 1 ms RC = %v, want < 0.3", peak)
	}
}

func TestComparatorHysteresis(t *testing.T) {
	k := sim.NewKernel()
	g := graph(t, k)
	vals := []float64{0, 0.4, 0.7, 0.5, 0.4, 0.2, 0.7}
	i := 0
	g.MustAdd(NewSource("seq", func(sim.Time) float64 {
		v := vals[i%len(vals)]
		i++
		return v
	}))
	g.MustAdd(NewComparator("cmp", 0.3, 0.6))
	probe := g.MustAdd(NewProbe("p")).(*Probe)
	g.MustConnect("seq", 0, "cmp", 0)
	g.MustConnect("cmp", 0, "p", 0)
	if err := g.Elaborate(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.US(650)); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	want := []float64{0, 0, 1, 1, 1, 0, 1} // stays high at 0.5/0.4, drops at 0.2
	for j, w := range want {
		if probe.Samples[j] != w {
			t.Errorf("step %d (in %v): out %v, want %v", j, vals[j], probe.Samples[j], w)
		}
	}
}

func TestFeedbackRequiresDelay(t *testing.T) {
	// gain -> adder -> gain is a delay-free loop: rejected.
	k := sim.NewKernel()
	g := graph(t, k)
	g.MustAdd(NewSource("src", func(sim.Time) float64 { return 1 }))
	g.MustAdd(NewAdder("sum"))
	g.MustAdd(NewGain("fb", 0.5))
	probe := g.MustAdd(NewProbe("p")).(*Probe)
	_ = probe
	g.MustConnect("src", 0, "sum", 0)
	g.MustConnect("sum", 0, "fb", 0)
	g.MustConnect("fb", 0, "sum", 1)
	g.MustConnect("sum", 0, "p", 0)
	if err := g.Elaborate(); err == nil {
		t.Fatal("delay-free loop accepted")
	}
}

func TestFeedbackThroughStatefulModule(t *testing.T) {
	// Integrator: sum -> lowpass(state) -> back to sum. Legal.
	k := sim.NewKernel()
	g := graph(t, k)
	g.MustAdd(NewSource("src", func(sim.Time) float64 { return 1 }))
	g.MustAdd(NewAdder("sum"))
	g.MustAdd(NewLowPass("lp", sim.MS(1), g.Timestep))
	probe := g.MustAdd(NewProbe("p")).(*Probe)
	_ = probe
	g.MustConnect("src", 0, "sum", 0)
	g.MustConnect("sum", 0, "lp", 0)
	g.MustConnect("lp", 0, "sum", 1)
	g.MustConnect("sum", 0, "p", 0)
	if err := g.Elaborate(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.MS(2)); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
}

func TestDisturbFaultInjection(t *testing.T) {
	k := sim.NewKernel()
	g := graph(t, k)
	g.MustAdd(NewSource("src", func(sim.Time) float64 { return 1 }))
	dist := g.MustAdd(NewDisturb("harness")).(*Disturb)
	probe := g.MustAdd(NewProbe("p")).(*Probe)
	g.MustConnect("src", 0, "harness", 0)
	g.MustConnect("harness", 0, "p", 0)
	if err := g.Elaborate(); err != nil {
		t.Fatal(err)
	}
	inj := fault.AnalogInjector("chain.harness", dist, 0, 5)

	if err := k.Run(sim.US(300)); err != nil {
		t.Fatal(err)
	}
	if err := inj.Inject(fault.Descriptor{Name: "d", Model: fault.ValueOffset, Target: "chain.harness", Param: 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.US(300)); err != nil {
		t.Fatal(err)
	}
	if err := inj.Inject(fault.Descriptor{Name: "d2", Model: fault.ShortToSupply, Target: "chain.harness"}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(sim.US(300)); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	s := probe.Samples
	if s[0] != 1 {
		t.Errorf("clean sample = %v", s[0])
	}
	if s[4] != 1.25 {
		t.Errorf("offset sample = %v, want 1.25", s[4])
	}
	if s[len(s)-1] != 5 {
		t.Errorf("short-to-supply sample = %v, want 5", s[len(s)-1])
	}
}

func TestDEBridges(t *testing.T) {
	k := sim.NewKernel()
	deIn := sim.NewSignal(k, "cmd", 2.0)
	deOut := sim.NewSignal(k, "meas", 0.0)
	g := graph(t, k)
	g.MustAdd(NewFromDE("from", deIn))
	g.MustAdd(NewGain("amp", 10))
	g.MustAdd(NewToDE("to", deOut))
	g.MustConnect("from", 0, "amp", 0)
	g.MustConnect("amp", 0, "to", 0)
	if err := g.Elaborate(); err != nil {
		t.Fatal(err)
	}
	var mid, end float64
	k.Thread("de", func(ctx *sim.ThreadCtx) {
		ctx.WaitTime(sim.US(450))
		mid = deOut.Read()
		deIn.Write(7)
		ctx.WaitTime(sim.US(450))
		end = deOut.Read()
	})
	if err := k.Run(sim.MS(1)); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if mid != 20 {
		t.Errorf("mid = %v, want 20", mid)
	}
	if end != 70 {
		t.Errorf("end = %v, want 70", end)
	}
}

func TestGraphErrors(t *testing.T) {
	k := sim.NewKernel()
	g := graph(t, k)
	g.MustAdd(NewGain("a", 1))
	if err := g.Add(NewGain("a", 2)); err == nil {
		t.Error("duplicate module accepted")
	}
	if err := g.Connect("a", 0, "nosuch", 0); err == nil {
		t.Error("connect to unknown module accepted")
	}
	if err := g.Connect("a", 5, "a", 0); err == nil {
		t.Error("bad port accepted")
	}
	// Unconnected input rejected at elaboration.
	if err := g.Elaborate(); err == nil {
		t.Error("unconnected input accepted")
	}
}

func TestDoubleDriveRejected(t *testing.T) {
	k := sim.NewKernel()
	g := graph(t, k)
	g.MustAdd(NewSource("s1", func(sim.Time) float64 { return 1 }))
	g.MustAdd(NewSource("s2", func(sim.Time) float64 { return 2 }))
	g.MustAdd(NewGain("g", 1))
	g.MustConnect("s1", 0, "g", 0)
	if err := g.Connect("s2", 0, "g", 0); err == nil {
		t.Error("double-driven input accepted")
	}
}
