// Package ams is an analog/mixed-signal substrate in the style of
// SystemC-AMS timed dataflow (TDF): single-rate module graphs process
// sample streams at a fixed timestep, with converter modules bridging
// into the discrete-event kernel and fault hooks for analog
// disturbances.
//
// The paper (Sec. 3.3) lists the AMS extension as an open need:
// "Digital based methodologies have to be extended towards AMS
// (Analogue Mixed Signal) designs. Li et al. [37] target this by
// including SystemC-AMS in their work." This package is that
// extension for the Go framework: sensor front-ends, filters and
// comparators run as dataflow clusters, and fault.AnalogInjector
// drives their Disturb stages.
package ams

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Module is one TDF processing node: Process consumes one sample per
// input and produces one per output, invoked once per timestep in
// static schedule order.
type Module interface {
	// Name is the instance name.
	Name() string
	// Arity reports input and output port counts.
	Arity() (in, out int)
	// Process computes one timestep.
	Process(t sim.Time, in []float64, out []float64)
}

// Stateful is implemented by modules whose outputs at step n depend
// only on inputs up to step n-1 (unit-delay semantics). They may
// appear inside feedback loops — like DFFs in a netlist.
type Stateful interface {
	Module
	stateful()
}

// wire is one connection.
type wire struct {
	fromMod, fromPort int
	value             float64
}

// Graph is a single-rate TDF cluster bound to the kernel.
type Graph struct {
	k        *sim.Kernel
	name     string
	Timestep sim.Time

	modules []Module
	index   map[string]int
	// inputsOf[m][p] is the wire feeding module m's input port p.
	inputsOf [][]*wire
	// outWires[m][p] fan out from module m's output port p.
	outWires [][][]*wire

	order  []int
	frozen bool
	steps  uint64
}

// NewGraph creates an empty cluster with a 100 us timestep.
func NewGraph(k *sim.Kernel, name string) *Graph {
	return &Graph{k: k, name: name, Timestep: sim.US(100), index: map[string]int{}}
}

// Add registers a module.
func (g *Graph) Add(m Module) error {
	if g.frozen {
		return fmt.Errorf("ams: %s: Add after Elaborate", g.name)
	}
	if _, dup := g.index[m.Name()]; dup {
		return fmt.Errorf("ams: duplicate module %q", m.Name())
	}
	g.index[m.Name()] = len(g.modules)
	g.modules = append(g.modules, m)
	in, out := m.Arity()
	g.inputsOf = append(g.inputsOf, make([]*wire, in))
	fan := make([][]*wire, out)
	g.outWires = append(g.outWires, fan)
	return nil
}

// MustAdd is Add that panics (elaboration-time use).
func (g *Graph) MustAdd(m Module) Module {
	if err := g.Add(m); err != nil {
		panic(err)
	}
	return m
}

// Connect wires from's output port to to's input port.
func (g *Graph) Connect(from string, fromPort int, to string, toPort int) error {
	fi, ok := g.index[from]
	if !ok {
		return fmt.Errorf("ams: unknown module %q", from)
	}
	ti, ok := g.index[to]
	if !ok {
		return fmt.Errorf("ams: unknown module %q", to)
	}
	_, fOut := g.modules[fi].Arity()
	tIn, _ := g.modules[ti].Arity()
	if fromPort < 0 || fromPort >= fOut {
		return fmt.Errorf("ams: %s has no output %d", from, fromPort)
	}
	if toPort < 0 || toPort >= tIn {
		return fmt.Errorf("ams: %s has no input %d", to, toPort)
	}
	if g.inputsOf[ti][toPort] != nil {
		return fmt.Errorf("ams: input %s.%d already driven", to, toPort)
	}
	w := &wire{fromMod: fi, fromPort: fromPort}
	g.inputsOf[ti][toPort] = w
	g.outWires[fi][fromPort] = append(g.outWires[fi][fromPort], w)
	return nil
}

// MustConnect is Connect that panics.
func (g *Graph) MustConnect(from string, fromPort int, to string, toPort int) {
	if err := g.Connect(from, fromPort, to, toPort); err != nil {
		panic(err)
	}
}

// Elaborate checks connectivity, computes the static schedule and
// spawns the cluster thread. Feedback loops must contain a Stateful
// module (unit delay), mirroring SystemC-AMS's delay requirement.
func (g *Graph) Elaborate() error {
	if g.frozen {
		return fmt.Errorf("ams: %s already elaborated", g.name)
	}
	for mi, ins := range g.inputsOf {
		for p, w := range ins {
			if w == nil {
				return fmt.Errorf("ams: input %s.%d unconnected", g.modules[mi].Name(), p)
			}
		}
	}
	// Kahn over non-stateful dependencies.
	indeg := make([]int, len(g.modules))
	for mi, ins := range g.inputsOf {
		if _, isState := g.modules[mi].(Stateful); isState {
			continue // reads previous-step values only
		}
		for _, w := range ins {
			if _, srcState := g.modules[w.fromMod].(Stateful); !srcState {
				indeg[mi]++
			}
		}
	}
	var queue []int
	for mi := range g.modules {
		if _, isState := g.modules[mi].(Stateful); isState || indeg[mi] == 0 {
			if !contains(queue, mi) {
				queue = append(queue, mi)
			}
		}
	}
	seen := map[int]bool{}
	for len(queue) > 0 {
		mi := queue[0]
		queue = queue[1:]
		if seen[mi] {
			continue
		}
		seen[mi] = true
		g.order = append(g.order, mi)
		for _, fan := range g.outWires[mi] {
			for _, w := range fan {
				for ti, ins := range g.inputsOf {
					for _, iw := range ins {
						if iw == w {
							if _, isState := g.modules[ti].(Stateful); isState {
								continue
							}
							indeg[ti]--
							if indeg[ti] == 0 {
								queue = append(queue, ti)
							}
						}
					}
				}
			}
		}
	}
	if len(g.order) != len(g.modules) {
		return fmt.Errorf("ams: %s contains a delay-free feedback loop", g.name)
	}
	g.frozen = true
	g.k.Thread("ams."+g.name, g.run)
	return nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// run is the cluster thread: one Process sweep per timestep.
func (g *Graph) run(ctx *sim.ThreadCtx) {
	inBuf := make([][]float64, len(g.modules))
	outBuf := make([][]float64, len(g.modules))
	for mi, m := range g.modules {
		in, out := m.Arity()
		inBuf[mi] = make([]float64, in)
		outBuf[mi] = make([]float64, out)
	}
	for {
		t := ctx.Now()
		for _, mi := range g.order {
			m := g.modules[mi]
			for p, w := range g.inputsOf[mi] {
				inBuf[mi][p] = w.value
			}
			m.Process(t, inBuf[mi], outBuf[mi])
			for p, fan := range g.outWires[mi] {
				for _, w := range fan {
					w.value = outBuf[mi][p]
				}
			}
		}
		g.steps++
		ctx.WaitTime(g.Timestep)
	}
}

// Steps reports completed timesteps.
func (g *Graph) Steps() uint64 { return g.steps }

// ---- Module library ----

// base provides Name/Arity bookkeeping.
type base struct {
	name    string
	in, out int
}

func (b *base) Name() string         { return b.name }
func (b *base) Arity() (in, out int) { return b.in, b.out }

// Source emits f(t) on its single output.
type Source struct {
	base
	F func(t sim.Time) float64
}

// NewSource creates a function source.
func NewSource(name string, f func(t sim.Time) float64) *Source {
	return &Source{base: base{name: name, out: 1}, F: f}
}

// Process implements Module.
func (s *Source) Process(t sim.Time, in, out []float64) { out[0] = s.F(t) }

// NewSine creates a sine source: amp * sin(2π f t) + offset.
func NewSine(name string, amp, freqHz, offset float64) *Source {
	return NewSource(name, func(t sim.Time) float64 {
		return amp*math.Sin(2*math.Pi*freqHz*t.Seconds()) + offset
	})
}

// Gain multiplies by K.
type Gain struct {
	base
	K float64
}

// NewGain creates a gain stage.
func NewGain(name string, k float64) *Gain {
	return &Gain{base: base{name: name, in: 1, out: 1}, K: k}
}

// Process implements Module.
func (g *Gain) Process(t sim.Time, in, out []float64) { out[0] = g.K * in[0] }

// Adder sums its two inputs.
type Adder struct{ base }

// NewAdder creates a 2-input adder.
func NewAdder(name string) *Adder {
	return &Adder{base: base{name: name, in: 2, out: 1}}
}

// Process implements Module.
func (a *Adder) Process(t sim.Time, in, out []float64) { out[0] = in[0] + in[1] }

// LowPass is a discretized first-order RC low-pass filter
// (y += α(x−y), α = dt/(τ+dt)). It is Stateful: its output is the
// previous state, so it may close feedback loops.
type LowPass struct {
	base
	// Tau is the RC time constant.
	Tau sim.Time
	// dt is bound at first Process call from the graph timestep via
	// successive call spacing; the graph sets it on elaboration
	// instead for determinism.
	Dt sim.Time

	y float64
}

// NewLowPass creates the filter; dt must equal the graph timestep.
func NewLowPass(name string, tau, dt sim.Time) *LowPass {
	return &LowPass{base: base{name: name, in: 1, out: 1}, Tau: tau, Dt: dt}
}

func (*LowPass) stateful() {}

// Process implements Module.
func (l *LowPass) Process(t sim.Time, in, out []float64) {
	out[0] = l.y
	alpha := float64(l.Dt) / float64(l.Tau+l.Dt)
	l.y += alpha * (in[0] - l.y)
}

// Comparator outputs 1 when the input crosses above High and 0 when
// it falls below Low (hysteresis).
type Comparator struct {
	base
	High, Low float64
	state     bool
}

// NewComparator creates a hysteresis comparator.
func NewComparator(name string, low, high float64) *Comparator {
	return &Comparator{base: base{name: name, in: 1, out: 1}, High: high, Low: low}
}

// Process implements Module.
func (c *Comparator) Process(t sim.Time, in, out []float64) {
	switch {
	case in[0] >= c.High:
		c.state = true
	case in[0] <= c.Low:
		c.state = false
	}
	if c.state {
		out[0] = 1
	} else {
		out[0] = 0
	}
}

// Disturb passes its input through an injectable disturbance: offset
// and hard override, implementing the fault.AnalogValue contract so
// fault.AnalogInjector can attack any point of an analog chain.
type Disturb struct {
	base
	offset   float64
	override float64
}

// NewDisturb creates a transparent (fault-free) disturbance stage.
func NewDisturb(name string) *Disturb {
	return &Disturb{base: base{name: name, in: 1, out: 1}, override: math.NaN()}
}

// SetDisturbance implements fault.AnalogValue.
func (d *Disturb) SetDisturbance(offset, override float64) {
	d.offset = offset
	d.override = override
}

// Process implements Module.
func (d *Disturb) Process(t sim.Time, in, out []float64) {
	switch {
	case math.IsInf(d.override, 1):
		out[0] = 0 // open line
	case !math.IsNaN(d.override):
		out[0] = d.override
	default:
		out[0] = in[0] + d.offset
	}
}

// ToDE samples its input into a discrete-event signal every timestep —
// the TDF→DE converter.
type ToDE struct {
	base
	Sig *sim.Signal[float64]
}

// NewToDE creates the converter writing to sig.
func NewToDE(name string, sig *sim.Signal[float64]) *ToDE {
	return &ToDE{base: base{name: name, in: 1}, Sig: sig}
}

// Process implements Module.
func (c *ToDE) Process(t sim.Time, in, out []float64) { c.Sig.Write(in[0]) }

// FromDE injects a discrete-event signal into the dataflow cluster —
// the DE→TDF converter.
type FromDE struct {
	base
	Sig *sim.Signal[float64]
}

// NewFromDE creates the converter reading from sig.
func NewFromDE(name string, sig *sim.Signal[float64]) *FromDE {
	return &FromDE{base: base{name: name, out: 1}, Sig: sig}
}

// Process implements Module.
func (c *FromDE) Process(t sim.Time, in, out []float64) { out[0] = c.Sig.Read() }

// Probe records every sample of its input (test instrumentation).
type Probe struct {
	base
	Samples []float64
}

// NewProbe creates a recording sink.
func NewProbe(name string) *Probe {
	return &Probe{base: base{name: name, in: 1}}
}

// Process implements Module.
func (p *Probe) Process(t sim.Time, in, out []float64) {
	p.Samples = append(p.Samples, in[0])
}
