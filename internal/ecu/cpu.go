package ecu

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/tlm"
)

// CPU is an AE32 core: a loosely-timed TLM initiator that fetches,
// decodes and executes one instruction per Step, annotating consumed
// time instead of synchronizing with the kernel (the caller owns the
// quantum keeper). Register r0 is hardwired to zero.
//
// Fault injection sites: FlipRegBit (SEU in the register file),
// FlipPCBit (SEU in the program counter), and everything reachable
// through the bus (instruction and data memory).
type CPU struct {
	name string
	// Bus is the instruction+data port.
	Bus *tlm.InitiatorSocket
	// CyclePeriod is the clock period; CPI the cycles per instruction
	// (memory latency comes from the bus on top).
	CyclePeriod sim.Time
	CPI         uint32
	// IRQVector is the interrupt entry point.
	IRQVector uint32
	// StoreHook observes every SW (lockstep comparators attach here).
	StoreHook func(addr, val uint32)

	regs    [16]uint32
	pc      uint32
	savedPC uint32
	inIRQ   bool
	pending bool
	halted  bool
	instrs  uint64
}

// NewCPU creates a core with a 100 MHz clock and CPI 1.
func NewCPU(name string) *CPU {
	return &CPU{
		name:        name,
		Bus:         tlm.NewInitiatorSocket(name + ".bus"),
		CyclePeriod: sim.NS(10),
		CPI:         1,
	}
}

// Name reports the core name.
func (c *CPU) Name() string { return c.name }

// Reset initializes the core to start execution at pc.
func (c *CPU) Reset(pc uint32) {
	c.regs = [16]uint32{}
	c.pc = pc
	c.savedPC = 0
	c.inIRQ = false
	c.pending = false
	c.halted = false
	c.instrs = 0
}

// PC reports the program counter.
func (c *CPU) PC() uint32 { return c.pc }

// Halted reports whether the core executed HALT.
func (c *CPU) Halted() bool { return c.halted }

// Instructions reports the retired instruction count.
func (c *CPU) Instructions() uint64 { return c.instrs }

// Reg reads register i.
func (c *CPU) Reg(i int) uint32 {
	if i == 0 {
		return 0
	}
	return c.regs[i&0xf]
}

// SetReg writes register i (r0 writes are ignored).
func (c *CPU) SetReg(i int, v uint32) {
	if i != 0 {
		c.regs[i&0xf] = v
	}
}

// FlipRegBit injects an SEU into the register file.
func (c *CPU) FlipRegBit(reg int, bit uint) {
	if reg != 0 && bit < 32 {
		c.regs[reg&0xf] ^= 1 << bit
	}
}

// FlipPCBit injects an SEU into the program counter.
func (c *CPU) FlipPCBit(bit uint) {
	if bit < 32 {
		c.pc ^= 1 << bit
	}
}

// RaiseIRQ marks the interrupt line pending; the core vectors before
// the next instruction (unless already servicing one).
func (c *CPU) RaiseIRQ() { c.pending = true }

// InIRQ reports whether the core is inside an interrupt handler.
func (c *CPU) InIRQ() bool { return c.inIRQ }

// Step executes one instruction, adding consumed time to *delay.
// Errors are machine-level faults (bus error, illegal opcode) that a
// real core would trap on; campaigns classify them as detected errors.
func (c *CPU) Step(delay *sim.Time) error {
	if c.halted {
		return nil
	}
	if c.pending && !c.inIRQ {
		c.pending = false
		c.inIRQ = true
		c.savedPC = c.pc
		c.pc = c.IRQVector
	}
	word, resp := c.Bus.Read32(uint64(c.pc), delay)
	if !resp.OK() {
		return fmt.Errorf("ecu: %s: instruction fetch at %#x failed: %s", c.name, c.pc, resp)
	}
	ins, err := Decode(word)
	if err != nil {
		return fmt.Errorf("ecu: %s at pc=%#x: %w", c.name, c.pc, err)
	}
	*delay += sim.Time(c.CPI) * c.CyclePeriod
	c.instrs++
	next := c.pc + 4
	switch ins.Op {
	case OpNOP:
	case OpHALT:
		c.halted = true
	case OpADD:
		c.SetReg(int(ins.Rd), c.Reg(int(ins.Rs1))+c.Reg(int(ins.Rs2)))
	case OpSUB:
		c.SetReg(int(ins.Rd), c.Reg(int(ins.Rs1))-c.Reg(int(ins.Rs2)))
	case OpAND:
		c.SetReg(int(ins.Rd), c.Reg(int(ins.Rs1))&c.Reg(int(ins.Rs2)))
	case OpOR:
		c.SetReg(int(ins.Rd), c.Reg(int(ins.Rs1))|c.Reg(int(ins.Rs2)))
	case OpXOR:
		c.SetReg(int(ins.Rd), c.Reg(int(ins.Rs1))^c.Reg(int(ins.Rs2)))
	case OpSHL:
		c.SetReg(int(ins.Rd), c.Reg(int(ins.Rs1))<<(c.Reg(int(ins.Rs2))&31))
	case OpSHR:
		c.SetReg(int(ins.Rd), c.Reg(int(ins.Rs1))>>(c.Reg(int(ins.Rs2))&31))
	case OpMUL:
		c.SetReg(int(ins.Rd), c.Reg(int(ins.Rs1))*c.Reg(int(ins.Rs2)))
	case OpADDI:
		c.SetReg(int(ins.Rd), c.Reg(int(ins.Rs1))+uint32(ins.Imm))
	case OpLUI:
		c.SetReg(int(ins.Rd), uint32(ins.Imm)<<20)
	case OpLW:
		addr := c.Reg(int(ins.Rs1)) + uint32(ins.Imm)
		v, resp := c.Bus.Read32(uint64(addr), delay)
		if !resp.OK() {
			return fmt.Errorf("ecu: %s: load at %#x failed: %s", c.name, addr, resp)
		}
		c.SetReg(int(ins.Rd), v)
	case OpSW:
		addr := c.Reg(int(ins.Rs1)) + uint32(ins.Imm)
		val := c.Reg(int(ins.Rs2))
		if resp := c.Bus.Write32(uint64(addr), val, delay); !resp.OK() {
			return fmt.Errorf("ecu: %s: store at %#x failed: %s", c.name, addr, resp)
		}
		if c.StoreHook != nil {
			c.StoreHook(addr, val)
		}
	case OpBEQ:
		if c.Reg(int(ins.Rs1)) == c.Reg(int(ins.Rs2)) {
			next = c.pc + uint32(ins.Imm*4) + 4
		}
	case OpBNE:
		if c.Reg(int(ins.Rs1)) != c.Reg(int(ins.Rs2)) {
			next = c.pc + uint32(ins.Imm*4) + 4
		}
	case OpBLT:
		if int32(c.Reg(int(ins.Rs1))) < int32(c.Reg(int(ins.Rs2))) {
			next = c.pc + uint32(ins.Imm*4) + 4
		}
	case OpBGE:
		if int32(c.Reg(int(ins.Rs1))) >= int32(c.Reg(int(ins.Rs2))) {
			next = c.pc + uint32(ins.Imm*4) + 4
		}
	case OpJAL:
		c.SetReg(int(ins.Rd), c.pc+4)
		next = c.pc + uint32(ins.Imm*4) + 4
	case OpJALR:
		c.SetReg(int(ins.Rd), c.pc+4)
		next = c.Reg(int(ins.Rs1)) + uint32(ins.Imm)
	case OpRETI:
		next = c.savedPC
		c.inIRQ = false
	}
	c.pc = next
	return nil
}

// Run executes the core on a thread process with temporal decoupling:
// consumed time accumulates in the quantum keeper and synchronizes
// with the kernel only when the quantum is exceeded. maxInstrs bounds
// runaway (corrupted) programs; 0 means unbounded. Run returns when
// the core halts, faults, or hits the bound.
func (c *CPU) Run(ctx *sim.ThreadCtx, qk *tlm.QuantumKeeper, maxInstrs uint64) error {
	for !c.halted {
		var d sim.Time
		if err := c.Step(&d); err != nil {
			qk.Sync()
			return err
		}
		qk.Inc(d)
		qk.SyncIfNeeded()
		if maxInstrs > 0 && c.instrs >= maxInstrs {
			break
		}
	}
	qk.Sync()
	return nil
}

// LoadProgram writes assembled words into memory through a debug
// (zero-time) transport at base.
func LoadProgram(target tlm.DebugTarget, base uint64, words []uint32) {
	buf := make([]byte, 4*len(words))
	for i, w := range words {
		buf[4*i] = byte(w)
		buf[4*i+1] = byte(w >> 8)
		buf[4*i+2] = byte(w >> 16)
		buf[4*i+3] = byte(w >> 24)
	}
	p := tlm.NewWrite(base, buf)
	target.TransportDbg(p)
}
