package ecu

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/tlm"
)

// Task is one periodic real-time task in the RTOS-lite model: released
// every Period, consuming WCET of execution time, due Deadline after
// release. Work is an optional callback executed at each completion
// (the functional payload); the scheduler itself only models timing —
// the AUTOSAR-runnable substitution documented in DESIGN.md.
type Task struct {
	Name     string
	Period   sim.Time
	Deadline sim.Time
	WCET     sim.Time
	// Work runs at each job completion with the job index.
	Work func(job int)
	// ExtraDelay is added to each job's execution time — the injection
	// point for delay faults ("the right value at the wrong time").
	ExtraDelay sim.Time
}

// JobRecord is one released job's timing. Completion is the exact
// (temporally decoupled, local-time) completion; ObservedCompletion
// is the kernel time at which an external monitor could see it —
// never later than Completion's wall position, so large quanta make
// external deadline monitors miss true violations (ObservedMissed is
// a subset of Missed). This observability gap is the accuracy cost of
// temporal decoupling that experiment E6 sweeps.
type JobRecord struct {
	Task               string
	Job                int
	Release            sim.Time
	Completion         sim.Time
	ObservedCompletion sim.Time
	Deadline           sim.Time
	Missed             bool
	ObservedMissed     bool
}

// Scheduler runs a periodic task set on the kernel with per-task
// temporal decoupling and records deadline misses. With quantum 0 the
// timing is exact; larger quanta trade deadline-detection accuracy
// for fewer kernel synchronizations (experiment E6).
type Scheduler struct {
	k     *sim.Kernel
	tasks []*Task
	// Quantum is the temporal-decoupling quantum applied to every
	// task's execution-time accounting.
	Quantum sim.Time
	// Horizon bounds job generation.
	Horizon sim.Time

	records []JobRecord
	misses  int
}

// NewScheduler creates a scheduler on the kernel.
func NewScheduler(k *sim.Kernel, horizon sim.Time) *Scheduler {
	return &Scheduler{k: k, Horizon: horizon}
}

// Add registers a task. Deadline defaults to Period when zero.
func (s *Scheduler) Add(t *Task) error {
	if t.Period == 0 || t.WCET == 0 {
		return fmt.Errorf("ecu: task %q needs period and WCET", t.Name)
	}
	if t.Deadline == 0 {
		t.Deadline = t.Period
	}
	if t.WCET > t.Deadline {
		return fmt.Errorf("ecu: task %q WCET %s exceeds deadline %s", t.Name, t.WCET, t.Deadline)
	}
	s.tasks = append(s.tasks, t)
	return nil
}

// Spawn elaborates one kernel thread per task. Call before running
// the kernel.
func (s *Scheduler) Spawn() {
	for _, t := range s.tasks {
		task := t
		s.k.Thread("rtos."+task.Name, func(ctx *sim.ThreadCtx) {
			qk := tlm.NewQuantumKeeper(ctx, s.Quantum)
			for job := 0; ; job++ {
				release := sim.Time(job) * task.Period
				if release >= s.Horizon {
					return
				}
				// Wait (in decoupled time) for the release instant.
				if now := qk.CurrentTime(); now < release {
					qk.Inc(release - now)
				}
				// Execute.
				qk.Inc(task.WCET + task.ExtraDelay)
				qk.SyncIfNeeded()
				completion := qk.CurrentTime()
				observed := ctx.Now()
				if task.Work != nil {
					task.Work(job)
				}
				deadline := release + task.Deadline
				rec := JobRecord{
					Task:               task.Name,
					Job:                job,
					Release:            release,
					Completion:         completion,
					ObservedCompletion: observed,
					Deadline:           deadline,
					Missed:             completion > deadline,
					ObservedMissed:     observed > deadline,
				}
				if rec.Missed {
					s.misses++
				}
				s.records = append(s.records, rec)
			}
		})
	}
}

// Run spawns the tasks and advances the kernel to the horizon.
func (s *Scheduler) Run() error {
	s.Spawn()
	return s.k.Run(s.Horizon)
}

// Records reports every job's timing.
func (s *Scheduler) Records() []JobRecord { return s.records }

// Misses reports the deadline-miss count.
func (s *Scheduler) Misses() int { return s.misses }

// ObservedMisses reports how many true misses an external (kernel-
// time) monitor would have seen.
func (s *Scheduler) ObservedMisses() int {
	n := 0
	for _, r := range s.records {
		if r.ObservedMissed {
			n++
		}
	}
	return n
}

// MissesFor reports misses of one task.
func (s *Scheduler) MissesFor(name string) int {
	n := 0
	for _, r := range s.records {
		if r.Task == name && r.Missed {
			n++
		}
	}
	return n
}
