package ecu

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/stressor"
)

func TestRunnerGolden(t *testing.T) {
	r, err := NewRunner(DefaultRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	g := r.Golden()
	if g.Outputs["halted"] != "true/true" {
		t.Fatalf("golden cores did not halt: %v", g.Outputs)
	}
	if g.Outputs["acc"] != g.Outputs["sacc"] {
		t.Fatalf("golden cores disagree: %v", g.Outputs)
	}
	if g.Outputs["acc"] == "0x0" {
		t.Fatalf("golden checksum is zero — workload not running")
	}
	if g.Detected || g.LatentState {
		t.Fatalf("golden run not clean: %+v", g)
	}
}

func TestRunnerGoldenRepeatsOnReusedSlot(t *testing.T) {
	r, err := NewRunner(DefaultRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 3; i++ {
		ob, regs, table, err := r.execute(fault.Scenario{ID: fmt.Sprintf("g%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ob.Outputs, r.golden.Outputs) || ob.Detected {
			t.Fatalf("rerun %d drifted: %+v vs %+v", i, ob, r.golden)
		}
		if regs != r.goldenRegs {
			t.Fatalf("rerun %d register files drifted", i)
		}
		if !bytesEqual(table, r.goldenTable) {
			t.Fatalf("rerun %d table image drifted", i)
		}
	}
}

func TestRunnerDetectsRegisterUpset(t *testing.T) {
	r, err := NewRunner(DefaultRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Flip a live accumulator bit in the primary only: the store
	// streams must diverge and lockstep must catch it.
	out := r.RunScenario(fault.Single(fault.Descriptor{
		Name: "seu-r3", Model: fault.BitFlip, Class: fault.Permanent,
		Target: "ecu.primary.regs", Address: 3, Bit: 7, Start: 0,
	}))
	if out.Class != fault.DetectedSafe {
		t.Fatalf("register upset not detected: %v (%s)", out.Class, out.Detail)
	}
}

func TestRunnerECCCorrectsTableUpset(t *testing.T) {
	r, err := NewRunner(DefaultRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Flip a data bit in a table cell before it is read: ECC corrects
	// it on the fly, so the outputs match golden but the detection
	// counter trips.
	out := r.RunScenario(fault.Single(fault.Descriptor{
		Name: "seu-table", Model: fault.BitFlip, Class: fault.Permanent,
		Target: "ecu.primary.mem", Address: runnerTableBase + 0x40, Bit: 5, Start: 0,
	}))
	if out.Class != fault.DetectedSafe {
		t.Fatalf("table upset not ECC-detected: %v (%s)", out.Class, out.Detail)
	}
}

// TestRunnerDeterminism asserts byte-identical campaign results across
// {rebuild, reuse} x {sequential, parallel} — the tentpole's core
// guarantee, on the second prototype family.
func TestRunnerDeterminism(t *testing.T) {
	run := func(reuseOff bool, workers int) *stressor.Result {
		r, err := NewRunner(DefaultRunnerConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		r.ReuseOff = reuseOff
		scs := fault.Singles(r.Universe(0))
		c := &stressor.Campaign{Name: "ecu-seu", Run: r.RunFunc(), Workers: workers}
		res, err := c.Execute(scs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(true, 0)
	if len(ref.Outcomes) == 0 {
		t.Fatal("empty universe")
	}
	if ref.Tally[fault.DetectedSafe] == 0 {
		t.Fatalf("no detections in SEU universe: %v", ref.Tally)
	}
	for _, reuseOff := range []bool{true, false} {
		for _, workers := range []int{0, 2, stressor.WorkersAuto} {
			got := run(reuseOff, workers)
			if !reflect.DeepEqual(ref.Outcomes, got.Outcomes) || !reflect.DeepEqual(ref.Tally, got.Tally) {
				t.Fatalf("reuseOff=%v workers=%d diverges from rebuild/sequential:\nref=%v\ngot=%v",
					reuseOff, workers, ref.Tally, got.Tally)
			}
		}
	}
}
