package ecu

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stressor"
	"repro/internal/stressor/stressortest"
)

func TestRunnerGolden(t *testing.T) {
	r, err := NewRunner(DefaultRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	g := r.Golden()
	if g.Outputs["halted"] != "true/true" {
		t.Fatalf("golden cores did not halt: %v", g.Outputs)
	}
	if g.Outputs["acc"] != g.Outputs["sacc"] {
		t.Fatalf("golden cores disagree: %v", g.Outputs)
	}
	if g.Outputs["acc"] == "0x0" {
		t.Fatalf("golden checksum is zero — workload not running")
	}
	if g.Detected || g.LatentState {
		t.Fatalf("golden run not clean: %+v", g)
	}
}

func TestRunnerGoldenRepeatsOnReusedSlot(t *testing.T) {
	r, err := NewRunner(DefaultRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 3; i++ {
		ob, regs, table, err := r.execute(fault.Scenario{ID: fmt.Sprintf("g%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ob.Outputs, r.golden.Outputs) || ob.Detected {
			t.Fatalf("rerun %d drifted: %+v vs %+v", i, ob, r.golden)
		}
		if regs != r.goldenRegs {
			t.Fatalf("rerun %d register files drifted", i)
		}
		if !bytesEqual(table, r.goldenTable) {
			t.Fatalf("rerun %d table image drifted", i)
		}
	}
}

func TestRunnerDetectsRegisterUpset(t *testing.T) {
	r, err := NewRunner(DefaultRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Flip a live accumulator bit in the primary only: the store
	// streams must diverge and lockstep must catch it.
	out := r.RunScenario(fault.Single(fault.Descriptor{
		Name: "seu-r3", Model: fault.BitFlip, Class: fault.Permanent,
		Target: "ecu.primary.regs", Address: 3, Bit: 7, Start: 0,
	}))
	if out.Class != fault.DetectedSafe {
		t.Fatalf("register upset not detected: %v (%s)", out.Class, out.Detail)
	}
}

func TestRunnerECCCorrectsTableUpset(t *testing.T) {
	r, err := NewRunner(DefaultRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Flip a data bit in a table cell before it is read: ECC corrects
	// it on the fly, so the outputs match golden but the detection
	// counter trips.
	out := r.RunScenario(fault.Single(fault.Descriptor{
		Name: "seu-table", Model: fault.BitFlip, Class: fault.Permanent,
		Target: "ecu.primary.mem", Address: runnerTableBase + 0x40, Bit: 5, Start: 0,
	}))
	if out.Class != fault.DetectedSafe {
		t.Fatalf("table upset not ECC-detected: %v (%s)", out.Class, out.Detail)
	}
}

// TestRunnerDeterminismMatrix asserts byte-identical campaign results
// across {rebuild, reuse} × {sequential, parallel} × {unsharded,
// 2-shard merged} × {fresh, resumed} — the shared cross-mode matrix on
// the second prototype family.
func TestRunnerDeterminismMatrix(t *testing.T) {
	r, err := NewRunner(DefaultRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	scs := fault.Singles(r.Universe(0))
	r.Close()
	stressortest.Run(t, stressortest.Config{
		Name:      "ecu-seu",
		Scenarios: scs,
		NewRun: func(t *testing.T, reuseOff bool) (stressor.RunFunc, stressor.Checkpointer, func()) {
			r, err := NewRunner(DefaultRunnerConfig())
			if err != nil {
				t.Fatal(err)
			}
			r.ReuseOff = reuseOff
			return r.RunFunc(), r, r.Close
		},
		Shards: []int{1, 2},
	})
}

// TestRunnerCheckpointMatrix reruns the matrix with a non-zero
// injection time: Universe(0) scenarios all fork at time zero (no
// prefix to amortize, ForkTime declines them), so the matrix above
// only proves the transparent fallback. Injecting at 2µs makes every
// scenario fork-eligible and drives the ECU checkpoint sessions —
// snapshot of mid-run cores, restore, re-injection — through the full
// {seq,par} × {sharded} × {resumed} grid.
func TestRunnerCheckpointMatrix(t *testing.T) {
	r, err := NewRunner(DefaultRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	scs := fault.Singles(r.Universe(sim.US(2)))
	r.Close()
	stressortest.Run(t, stressortest.Config{
		Name:      "ecu-seu-cp",
		Scenarios: scs,
		NewRun: func(t *testing.T, reuseOff bool) (stressor.RunFunc, stressor.Checkpointer, func()) {
			r, err := NewRunner(DefaultRunnerConfig())
			if err != nil {
				t.Fatal(err)
			}
			r.ReuseOff = reuseOff
			return r.RunFunc(), r, r.Close
		},
		Workers: []int{0, 2},
		Shards:  []int{1, 2},
	})
}

// TestRunnerSEUDetections guards the matrix against vacuity on the
// mechanism side: the SEU universe must actually trip detections.
func TestRunnerSEUDetections(t *testing.T) {
	r, err := NewRunner(DefaultRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.NewCampaign("ecu-seu", stressor.Shard{}).Execute(fault.Singles(r.Universe(0)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally[fault.DetectedSafe] == 0 {
		t.Fatalf("no detections in SEU universe: %v", res.Tally)
	}
}

// TestRunnerAdaptiveDeterminismMatrix drives the adaptive campaign
// loop against the ECU prototype: the Novelty strategy mutates on
// real snapshot-state signatures, and every {workers} × {rebuild,
// reuse} × {fresh, resumed} cell must match the sequential reference.
func TestRunnerAdaptiveDeterminismMatrix(t *testing.T) {
	r, err := NewRunner(DefaultRunnerConfig())
	if err != nil {
		t.Fatal(err)
	}
	universe := r.Universe(0)
	r.Close()
	stressortest.RunAdaptive(t, stressortest.AdaptiveConfig{
		Name:     "ecu-seu-adaptive",
		Universe: universe,
		Budget:   16,
		NewRun: func(t *testing.T, reuseOff bool) (stressor.RunFunc, func()) {
			r, err := NewRunner(DefaultRunnerConfig())
			if err != nil {
				t.Fatal(err)
			}
			r.ReuseOff = reuseOff
			return r.SignedRunFunc(), r.Close
		},
	})
}
