package ecu

import (
	"repro/internal/sim"
)

// Snapshot state for the ECU prototype, following the sim.Snapshottable
// convention: ecuSlot.SnapshotState deep-copies everything a run
// mutates — core register files, ECC codeword arrays, the watchdog
// shadow memory, lockstep store logs, watchdog counters and the
// run-phase process machines — so restoring it plus the paired kernel
// checkpoint rewinds a slot to the golden-prefix instant exactly.

type cpuState struct {
	regs    [16]uint32
	pc      uint32
	savedPC uint32
	inIRQ   bool
	pending bool
	halted  bool
	instrs  uint64
}

func (c *CPU) captureInto(st *cpuState) {
	st.regs = c.regs
	st.pc = c.pc
	st.savedPC = c.savedPC
	st.inIRQ = c.inIRQ
	st.pending = c.pending
	st.halted = c.halted
	st.instrs = c.instrs
}

func (c *CPU) restoreFrom(st *cpuState) {
	c.regs = st.regs
	c.pc = st.pc
	c.savedPC = st.savedPC
	c.inIRQ = st.inIRQ
	c.pending = st.pending
	c.halted = st.halted
	c.instrs = st.instrs
}

type eccState struct {
	words         []uint32
	check         []uint8
	corrected     uint64
	uncorrectable uint64
}

func (m *ECCMemory) captureInto(st *eccState) {
	st.words = append(st.words[:0], m.words...)
	st.check = append(st.check[:0], m.check...)
	st.corrected = m.corrected
	st.uncorrectable = m.uncorrectable
}

func (m *ECCMemory) restoreFrom(st *eccState) {
	copy(m.words, st.words)
	copy(m.check, st.check)
	m.corrected = st.corrected
	m.uncorrectable = st.uncorrectable
}

type wdState struct {
	enabled  bool
	timeouts uint64
	kicks    uint64
}

type lsState struct {
	pLog, sLog []storeRec
	diverged   bool
	detail     string
}

type crState struct {
	local sim.Time
	phase uint8
	err   error
}

// ecuSlotState is the opaque deep copy returned by SnapshotState.
type ecuSlotState struct {
	primary, shadow cpuState
	pram, sram      eccState
	wdshadow        any
	wd              wdState
	ls              lsState
	pRun, sRun      crState
	pDone, sDone    bool
	pErr, sErr      error
	haltAt          sim.Time
}

// SnapshotState implements sim.Snapshottable.
func (s *ecuSlot) SnapshotState() any {
	st := &ecuSlotState{
		wdshadow: s.wdshadow.SnapshotState(),
		wd:       wdState{enabled: s.wd.enabled, timeouts: s.wd.timeouts, kicks: s.wd.kicks},
		pRun:     crState{local: s.pRun.local, phase: s.pRun.phase, err: s.pRun.err},
		sRun:     crState{local: s.sRun.local, phase: s.sRun.phase, err: s.sRun.err},
		pDone:    s.pDone, sDone: s.sDone,
		pErr: s.pErr, sErr: s.sErr,
		haltAt: s.haltAt,
	}
	s.primary.captureInto(&st.primary)
	s.shadow.captureInto(&st.shadow)
	s.pram.captureInto(&st.pram)
	s.sram.captureInto(&st.sram)
	st.ls.pLog = append([]storeRec(nil), s.ls.pLog...)
	st.ls.sLog = append([]storeRec(nil), s.ls.sLog...)
	st.ls.diverged = s.ls.diverged
	st.ls.detail = s.ls.detail
	return st
}

// RestoreState implements sim.Snapshottable, reusing the slot's
// backing buffers (codeword arrays, store logs).
func (s *ecuSlot) RestoreState(state any) {
	st := state.(*ecuSlotState)
	s.primary.restoreFrom(&st.primary)
	s.shadow.restoreFrom(&st.shadow)
	s.pram.restoreFrom(&st.pram)
	s.sram.restoreFrom(&st.sram)
	s.wdshadow.RestoreState(st.wdshadow)
	s.wd.enabled = st.wd.enabled
	s.wd.timeouts = st.wd.timeouts
	s.wd.kicks = st.wd.kicks
	s.ls.pLog = append(s.ls.pLog[:0], st.ls.pLog...)
	s.ls.sLog = append(s.ls.sLog[:0], st.ls.sLog...)
	s.ls.diverged = st.ls.diverged
	s.ls.detail = st.ls.detail
	s.pRun.local, s.pRun.phase, s.pRun.err = st.pRun.local, st.pRun.phase, st.pRun.err
	s.sRun.local, s.sRun.phase, s.sRun.err = st.sRun.local, st.sRun.phase, st.sRun.err
	s.pDone, s.sDone = st.pDone, st.sDone
	s.pErr, s.sErr = st.pErr, st.sErr
	s.haltAt = st.haltAt
}
