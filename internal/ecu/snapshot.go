package ecu

import (
	"repro/internal/sim"
)

// Snapshot state for the ECU prototype, following the sim.Snapshottable
// convention: ecuSlot.SnapshotState deep-copies everything a run
// mutates — core register files, ECC codeword arrays, the watchdog
// shadow memory, lockstep store logs, watchdog counters and the
// run-phase process machines — so restoring it plus the paired kernel
// checkpoint rewinds a slot to the golden-prefix instant exactly.

type cpuState struct {
	regs    [16]uint32
	pc      uint32
	savedPC uint32
	inIRQ   bool
	pending bool
	halted  bool
	instrs  uint64
}

func (c *CPU) captureInto(st *cpuState) {
	st.regs = c.regs
	st.pc = c.pc
	st.savedPC = c.savedPC
	st.inIRQ = c.inIRQ
	st.pending = c.pending
	st.halted = c.halted
	st.instrs = c.instrs
}

func (c *CPU) restoreFrom(st *cpuState) {
	c.regs = st.regs
	c.pc = st.pc
	c.savedPC = st.savedPC
	c.inIRQ = st.inIRQ
	c.pending = st.pending
	c.halted = st.halted
	c.instrs = st.instrs
}

type eccState struct {
	words         []uint32
	check         []uint8
	corrected     uint64
	uncorrectable uint64
}

func (m *ECCMemory) captureInto(st *eccState) {
	st.words = append(st.words[:0], m.words...)
	st.check = append(st.check[:0], m.check...)
	st.corrected = m.corrected
	st.uncorrectable = m.uncorrectable
}

func (m *ECCMemory) restoreFrom(st *eccState) {
	copy(m.words, st.words)
	copy(m.check, st.check)
	m.corrected = st.corrected
	m.uncorrectable = st.uncorrectable
}

type wdState struct {
	enabled  bool
	timeouts uint64
	kicks    uint64
}

type lsState struct {
	pLog, sLog []storeRec
	diverged   bool
	detail     string
}

type crState struct {
	local sim.Time
	phase uint8
	err   error
}

// ecuSlotState is the opaque deep copy returned by SnapshotState.
type ecuSlotState struct {
	primary, shadow cpuState
	pram, sram      eccState
	wdshadow        any
	wd              wdState
	ls              lsState
	pRun, sRun      crState
	pDone, sDone    bool
	pErr, sErr      error
	haltAt          sim.Time
}

// SnapshotState implements sim.Snapshottable.
func (s *ecuSlot) SnapshotState() any {
	st := &ecuSlotState{
		wdshadow: s.wdshadow.SnapshotState(),
		wd:       wdState{enabled: s.wd.enabled, timeouts: s.wd.timeouts, kicks: s.wd.kicks},
		pRun:     crState{local: s.pRun.local, phase: s.pRun.phase, err: s.pRun.err},
		sRun:     crState{local: s.sRun.local, phase: s.sRun.phase, err: s.sRun.err},
		pDone:    s.pDone, sDone: s.sDone,
		pErr: s.pErr, sErr: s.sErr,
		haltAt: s.haltAt,
	}
	s.primary.captureInto(&st.primary)
	s.shadow.captureInto(&st.shadow)
	s.pram.captureInto(&st.pram)
	s.sram.captureInto(&st.sram)
	st.ls.pLog = append([]storeRec(nil), s.ls.pLog...)
	st.ls.sLog = append([]storeRec(nil), s.ls.sLog...)
	st.ls.diverged = s.ls.diverged
	st.ls.detail = s.ls.detail
	return st
}

// SnapshotStateInto implements sim.StatePooler: SnapshotState reusing
// a previous capture's buffers (codeword arrays, store logs, the
// watchdog shadow) so checkpoint-tree forking stays allocation-free in
// steady state.
func (s *ecuSlot) SnapshotStateInto(prev any) any {
	st, _ := prev.(*ecuSlotState)
	if st == nil {
		return s.SnapshotState()
	}
	s.primary.captureInto(&st.primary)
	s.shadow.captureInto(&st.shadow)
	s.pram.captureInto(&st.pram)
	s.sram.captureInto(&st.sram)
	st.wdshadow = s.wdshadow.SnapshotStateInto(st.wdshadow)
	st.wd = wdState{enabled: s.wd.enabled, timeouts: s.wd.timeouts, kicks: s.wd.kicks}
	st.ls.pLog = append(st.ls.pLog[:0], s.ls.pLog...)
	st.ls.sLog = append(st.ls.sLog[:0], s.ls.sLog...)
	st.ls.diverged = s.ls.diverged
	st.ls.detail = s.ls.detail
	st.pRun = crState{local: s.pRun.local, phase: s.pRun.phase, err: s.pRun.err}
	st.sRun = crState{local: s.sRun.local, phase: s.sRun.phase, err: s.sRun.err}
	st.pDone, st.sDone = s.pDone, s.sDone
	st.pErr, st.sErr = s.pErr, s.sErr
	st.haltAt = s.haltAt
	return st
}

// HashState implements sim.Hashable, folding everything a run mutates
// and FinalCheck/finishRun later read: core register files and
// run-state machines, the ECC codewords plus their corrected and
// uncorrectable counters (detection outputs), the watchdog shadow
// memory and counters, the lockstep store logs (FinalCheck compares
// them after the run) and the halt/error latches. The ECU slot keeps
// no diagnostics-only state, so nothing is excluded.
func (s *ecuSlot) HashState(h *sim.StateHash) {
	hashCPU(h, s.primary)
	hashCPU(h, s.shadow)
	hashECC(h, s.pram)
	hashECC(h, s.sram)
	s.wdshadow.HashState(h)
	h.Bool(s.wd.enabled)
	h.U64(s.wd.timeouts)
	h.U64(s.wd.kicks)
	hashStores(h, s.ls.pLog)
	hashStores(h, s.ls.sLog)
	h.Bool(s.ls.diverged)
	h.Str(s.ls.detail)
	hashCoreRun(h, s.pRun.local, s.pRun.phase, s.pRun.err)
	hashCoreRun(h, s.sRun.local, s.sRun.phase, s.sRun.err)
	h.Bool(s.pDone)
	h.Bool(s.sDone)
	hashErr(h, s.pErr)
	hashErr(h, s.sErr)
	h.Time(s.haltAt)
}

func hashCPU(h *sim.StateHash, c *CPU) {
	for _, r := range c.regs {
		h.U32(r)
	}
	h.U32(c.pc)
	h.U32(c.savedPC)
	h.Bool(c.inIRQ)
	h.Bool(c.pending)
	h.Bool(c.halted)
	h.U64(c.instrs)
}

func hashECC(h *sim.StateHash, m *ECCMemory) {
	h.Int(len(m.words))
	for _, w := range m.words {
		h.U32(w)
	}
	h.Bytes(m.check)
	h.U64(m.corrected)
	h.U64(m.uncorrectable)
}

func hashStores(h *sim.StateHash, log []storeRec) {
	h.Int(len(log))
	for _, r := range log {
		h.U32(r.addr)
		h.U32(r.val)
	}
}

func hashCoreRun(h *sim.StateHash, local sim.Time, phase uint8, err error) {
	h.Time(local)
	h.Byte(phase)
	hashErr(h, err)
}

// hashErr folds an error as a presence bit plus its message — two runs
// whose errors render identically are convergent for classification
// purposes (finishRun only reads Error()).
func hashErr(h *sim.StateHash, err error) {
	if err == nil {
		h.Bool(false)
		return
	}
	h.Bool(true)
	h.Str(err.Error())
}

// RestoreState implements sim.Snapshottable, reusing the slot's
// backing buffers (codeword arrays, store logs).
func (s *ecuSlot) RestoreState(state any) {
	st := state.(*ecuSlotState)
	s.primary.restoreFrom(&st.primary)
	s.shadow.restoreFrom(&st.shadow)
	s.pram.restoreFrom(&st.pram)
	s.sram.restoreFrom(&st.sram)
	s.wdshadow.RestoreState(st.wdshadow)
	s.wd.enabled = st.wd.enabled
	s.wd.timeouts = st.wd.timeouts
	s.wd.kicks = st.wd.kicks
	s.ls.pLog = append(s.ls.pLog[:0], st.ls.pLog...)
	s.ls.sLog = append(s.ls.sLog[:0], st.ls.sLog...)
	s.ls.diverged = st.ls.diverged
	s.ls.detail = st.ls.detail
	s.pRun.local, s.pRun.phase, s.pRun.err = st.pRun.local, st.pRun.phase, st.pRun.err
	s.sRun.local, s.sRun.phase, s.sRun.err = st.sRun.local, st.sRun.phase, st.sRun.err
	s.pDone, s.sDone = st.pDone, st.sDone
	s.pErr, s.sErr = st.pErr, st.sErr
	s.haltAt = st.haltAt
}
