package ecu

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/tlm"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: OpNOP},
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpADDI, Rd: 15, Rs1: 0, Imm: -2048},
		{Op: OpADDI, Rd: 15, Rs1: 0, Imm: 2047},
		{Op: OpLW, Rd: 4, Rs1: 5, Imm: 16},
		{Op: OpSW, Rs1: 6, Rs2: 7, Imm: -4},
		{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: -10},
		{Op: OpJAL, Rd: 14, Imm: 100},
		{Op: OpHALT},
	}
	for _, ins := range cases {
		got, err := Decode(Encode(ins))
		if err != nil {
			t.Fatalf("%v: %v", ins, err)
		}
		if got != ins {
			t.Errorf("round trip: %+v -> %+v", ins, got)
		}
	}
}

func TestDecodeIllegal(t *testing.T) {
	if _, err := Decode(0xff000000); err == nil {
		t.Error("illegal opcode decoded")
	}
}

func TestDisassembly(t *testing.T) {
	cases := map[string]Instr{
		"add r1, r2, r3":  {Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		"addi r4, r0, 42": {Op: OpADDI, Rd: 4, Rs1: 0, Imm: 42},
		"lw r2, 8(r3)":    {Op: OpLW, Rd: 2, Rs1: 3, Imm: 8},
		"sw r5, -4(r6)":   {Op: OpSW, Rs1: 6, Rs2: 5, Imm: -4},
		"halt":            {Op: OpHALT},
	}
	for want, ins := range cases {
		if got := ins.String(); got != want {
			t.Errorf("disasm = %q, want %q", got, want)
		}
	}
}

func TestAssembler(t *testing.T) {
	words, err := Assemble(`
		; compute 5 * 7 by repeated addition
		addi r1, r0, 5    ; counter
		addi r2, r0, 7
		addi r3, r0, 0    ; acc
	loop:
		beq  r1, r0, done
		add  r3, r3, r2
		addi r1, r1, -1
		jal  r0, loop
	done:
		sw   r3, 0(r0)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 9 {
		t.Fatalf("words = %d", len(words))
	}
	// Check branch offset: beq at word 3, done at word 7 -> off 3.
	ins, err := Decode(words[3])
	if err != nil || ins.Op != OpBEQ || ins.Imm != 3 {
		t.Errorf("beq = %+v, %v", ins, err)
	}
	// jal at word 6 back to loop (word 3) -> off -4.
	ins, _ = Decode(words[6])
	if ins.Op != OpJAL || ins.Imm != -4 {
		t.Errorf("jal = %+v", ins)
	}
}

func TestAssemblerErrors(t *testing.T) {
	bad := []string{
		"frob r1, r2",
		"add r1, r2",
		"add r16, r1, r2",
		"addi r1, r0, 99999",
		"lw r1, r2",
		"beq r1, r2, nowhere",
		"x: x: halt",
		".word zz",
	}
	for i, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("bad asm %d accepted: %q", i, src)
		}
	}
}

// buildSystem wires a CPU to RAM via a router.
func buildSystem(t *testing.T, program string) (*sim.Kernel, *CPU, *tlm.Memory) {
	t.Helper()
	k := sim.NewKernel()
	cpu := NewCPU("cpu0")
	ram := tlm.NewMemory("ram", 0, 64*1024)
	ram.ReadLatency = sim.NS(10)
	ram.WriteLatency = sim.NS(10)
	bus := tlm.NewRouter("bus")
	bus.MustMap("ram", 0, 64*1024, ram)
	cpu.Bus.Bind(bus)
	LoadProgram(ram, 0x1000, MustAssemble(program))
	cpu.Reset(0x1000)
	return k, cpu, ram
}

func TestCPUMultiplyProgram(t *testing.T) {
	k, cpu, ram := buildSystem(t, `
		addi r1, r0, 5
		addi r2, r0, 7
		addi r3, r0, 0
	loop:
		beq  r1, r0, done
		add  r3, r3, r2
		addi r1, r1, -1
		jal  r0, loop
	done:
		sw   r3, 256(r0)
		halt
	`)
	var runErr error
	k.Thread("cpu", func(ctx *sim.ThreadCtx) {
		qk := tlm.NewQuantumKeeper(ctx, sim.US(1))
		runErr = cpu.Run(ctx, qk, 10000)
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !cpu.Halted() {
		t.Fatal("cpu did not halt")
	}
	got := ram.Peek(256, 4)
	if got[0] != 35 {
		t.Errorf("result = %d, want 35", got[0])
	}
	if cpu.Instructions() == 0 || k.Now() == 0 {
		t.Error("no instructions or time consumed")
	}
}

func TestCPUHardwiredR0(t *testing.T) {
	k, cpu, _ := buildSystem(t, `
		addi r0, r0, 99
		sw   r0, 256(r0)
		halt
	`)
	k.Thread("cpu", func(ctx *sim.ThreadCtx) {
		qk := tlm.NewQuantumKeeper(ctx, 0)
		_ = cpu.Run(ctx, qk, 100)
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	if cpu.Reg(0) != 0 {
		t.Error("r0 not hardwired to zero")
	}
}

func TestCPUALUOps(t *testing.T) {
	k, cpu, ram := buildSystem(t, `
		addi r1, r0, 12
		addi r2, r0, 10
		and  r3, r1, r2   ; 8
		or   r4, r1, r2   ; 14
		xor  r5, r1, r2   ; 6
		sub  r6, r1, r2   ; 2
		mul  r7, r1, r2   ; 120
		addi r8, r0, 2
		shl  r9, r1, r8   ; 48
		shr  r10, r1, r8  ; 3
		sw r3, 0(r0)
		sw r4, 4(r0)
		sw r5, 8(r0)
		sw r6, 12(r0)
		sw r7, 16(r0)
		sw r9, 20(r0)
		sw r10, 24(r0)
		halt
	`)
	k.Thread("cpu", func(ctx *sim.ThreadCtx) {
		qk := tlm.NewQuantumKeeper(ctx, sim.US(1))
		_ = cpu.Run(ctx, qk, 1000)
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	want := []byte{8, 14, 6, 2, 120, 48, 3}
	for i, w := range want {
		if got := ram.Peek(uint64(4*i), 1)[0]; got != w {
			t.Errorf("result[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestCPUIRQ(t *testing.T) {
	// Main loop increments r1 forever; IRQ handler stores r1 and halts.
	k, cpu, ram := buildSystem(t, `
		jal r0, main
	handler:
		sw r1, 512(r0)
		halt
	main:
		addi r1, r1, 1
		jal r0, main
	`)
	cpu.IRQVector = 0x1004 // word 1 = handler
	k.Thread("cpu", func(ctx *sim.ThreadCtx) {
		qk := tlm.NewQuantumKeeper(ctx, sim.NS(200))
		_ = cpu.Run(ctx, qk, 100000)
	})
	k.Thread("irq", func(ctx *sim.ThreadCtx) {
		ctx.WaitTime(sim.US(2))
		cpu.RaiseIRQ()
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if !cpu.Halted() {
		t.Fatal("IRQ handler did not run")
	}
	if ram.Peek(512, 1)[0] == 0 {
		t.Error("handler saw zero iterations")
	}
}

func TestCPURegisterSEUChangesResult(t *testing.T) {
	prog := `
		addi r1, r0, 5
		addi r2, r0, 7
		mul  r3, r1, r2
		sw   r3, 256(r0)
		halt
	`
	run := func(inject bool) byte {
		k, cpu, ram := buildSystem(t, prog)
		k.Thread("cpu", func(ctx *sim.ThreadCtx) {
			qk := tlm.NewQuantumKeeper(ctx, 0)
			for !cpu.Halted() {
				var d sim.Time
				if err := cpu.Step(&d); err != nil {
					t.Errorf("step: %v", err)
					return
				}
				qk.Inc(d)
				qk.Sync()
				if inject && cpu.Instructions() == 2 {
					cpu.FlipRegBit(1, 1) // r1: 5 -> 7
					inject = false
				}
			}
		})
		if err := k.Run(sim.TimeMax); err != nil {
			t.Fatal(err)
		}
		return ram.Peek(256, 1)[0]
	}
	if got := run(false); got != 35 {
		t.Fatalf("golden = %d", got)
	}
	if got := run(true); got != 49 {
		t.Errorf("SEU result = %d, want 49 (7*7)", got)
	}
}

func TestCPUTrapsOnBadFetch(t *testing.T) {
	k, cpu, _ := buildSystem(t, `halt`)
	cpu.Reset(0xdead0000) // unmapped
	var runErr error
	k.Thread("cpu", func(ctx *sim.ThreadCtx) {
		qk := tlm.NewQuantumKeeper(ctx, 0)
		runErr = cpu.Run(ctx, qk, 10)
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	if runErr == nil || !strings.Contains(runErr.Error(), "fetch") {
		t.Errorf("runErr = %v", runErr)
	}
}

func TestECCEncodeDecodeClean(t *testing.T) {
	for _, v := range []uint32{0, 1, 0xffffffff, 0xdeadbeef, 0x55555555, 0x80000001} {
		c := eccEncode(v)
		got, status := eccDecode(v, c)
		if status != ECCOk || got != v {
			t.Errorf("clean decode of %#x: %v, %s", v, got, status)
		}
	}
}

func TestECCSingleBitCorrection(t *testing.T) {
	v := uint32(0xcafebabe)
	c := eccEncode(v)
	for bit := uint(0); bit < 32; bit++ {
		got, status := eccDecode(v^1<<bit, c)
		if status != ECCCorrected || got != v {
			t.Errorf("data bit %d: status %s, got %#x", bit, status, got)
		}
	}
	// Flipped check bits must also be recognized as single errors.
	for bit := uint(0); bit < 7; bit++ {
		got, status := eccDecode(v, c^1<<bit)
		if status != ECCCorrected || got != v {
			t.Errorf("check bit %d: status %s, got %#x", bit, status, got)
		}
	}
}

func TestECCDoubleBitDetection(t *testing.T) {
	v := uint32(0x12345678)
	c := eccEncode(v)
	cases := [][2]uint{{0, 1}, {3, 17}, {30, 31}, {5, 28}}
	for _, bits := range cases {
		_, status := eccDecode(v^1<<bits[0]^1<<bits[1], c)
		if status != ECCUncorrectable {
			t.Errorf("double flip %v: status %s", bits, status)
		}
	}
}

func TestECCMemoryEndToEnd(t *testing.T) {
	m := NewECCMemory("eccram", 0, 1024)
	var d sim.Time
	p := tlm.NewWrite(16, []byte{0x78, 0x56, 0x34, 0x12})
	m.BTransport(p, &d)
	if !p.Response.OK() {
		t.Fatal(p.Response)
	}
	// SEU in stored data: read corrects and scrubs.
	if err := m.FlipStoredBit(16, 5); err != nil {
		t.Fatal(err)
	}
	q := tlm.NewRead(16, 4)
	m.BTransport(q, &d)
	if !q.Response.OK() || q.Data[0] != 0x78 {
		t.Errorf("corrected read = %v % x", q.Response, q.Data)
	}
	corr, unc := m.Stats()
	if corr != 1 || unc != 0 {
		t.Errorf("stats = %d, %d", corr, unc)
	}
	// Double flip: detected, bus error.
	if err := m.FlipStoredBit(16, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.FlipStoredBit(16, 9); err != nil {
		t.Fatal(err)
	}
	q2 := tlm.NewRead(16, 4)
	m.BTransport(q2, &d)
	if q2.Response.OK() {
		t.Error("double error not detected")
	}
	_, unc = m.Stats()
	if unc != 1 {
		t.Errorf("uncorrectable = %d", unc)
	}
}

func TestECCMemoryAlignment(t *testing.T) {
	m := NewECCMemory("eccram", 0, 64)
	var d sim.Time
	p := tlm.NewRead(2, 4) // unaligned
	m.BTransport(p, &d)
	if p.Response != tlm.RespBurstError {
		t.Errorf("unaligned resp = %v", p.Response)
	}
	p2 := tlm.NewRead(0, 2) // not a word
	m.BTransport(p2, &d)
	if p2.Response != tlm.RespBurstError {
		t.Errorf("short resp = %v", p2.Response)
	}
	p3 := tlm.NewRead(1024, 4) // out of range
	m.BTransport(p3, &d)
	if p3.Response != tlm.RespAddressError {
		t.Errorf("oob resp = %v", p3.Response)
	}
}

func TestECCCorrectionDelay(t *testing.T) {
	m := NewECCMemory("eccram", 0, 64)
	m.ReadLatency = sim.NS(10)
	m.CorrectionDelay = sim.NS(50)
	var d sim.Time
	m.BTransport(tlm.NewWrite(0, []byte{1, 0, 0, 0}), &d)
	d = 0
	m.BTransport(tlm.NewRead(0, 4), &d)
	if d != sim.NS(10) {
		t.Errorf("clean read delay = %v", d)
	}
	if err := m.FlipStoredBit(0, 0); err != nil {
		t.Fatal(err)
	}
	d = 0
	m.BTransport(tlm.NewRead(0, 4), &d)
	if d != sim.NS(60) {
		t.Errorf("correcting read delay = %v, want 60 ns", d)
	}
}

func TestWatchdogKickKeepsAlive(t *testing.T) {
	k := sim.NewKernel()
	wd := NewWatchdog(k, "wd", sim.US(100))
	fired := 0
	wd.OnTimeout = func() { fired++ }
	k.Thread("sw", func(ctx *sim.ThreadCtx) {
		wd.Start()
		for i := 0; i < 10; i++ {
			ctx.WaitTime(sim.US(50))
			wd.Kick()
		}
		wd.Stop()
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	if fired != 0 || wd.Timeouts() != 0 {
		t.Errorf("watchdog fired %d times despite kicks", fired)
	}
	if wd.Kicks() != 10 {
		t.Errorf("kicks = %d", wd.Kicks())
	}
}

func TestWatchdogTimeout(t *testing.T) {
	k := sim.NewKernel()
	wd := NewWatchdog(k, "wd", sim.US(100))
	var firedAt []sim.Time
	wd.OnTimeout = func() { firedAt = append(firedAt, k.Now()) }
	k.Thread("sw", func(ctx *sim.ThreadCtx) {
		wd.Start()
		ctx.WaitTime(sim.US(50))
		wd.Kick()
		// then the software "hangs" — no more kicks
	})
	if err := k.Run(sim.US(500)); err != nil {
		t.Fatal(err)
	}
	wd.Stop()
	if len(firedAt) == 0 {
		t.Fatal("watchdog never fired")
	}
	if firedAt[0] != sim.US(150) {
		t.Errorf("first timeout at %v, want 150 us", firedAt[0])
	}
}

func TestWatchdogTLMInterface(t *testing.T) {
	k := sim.NewKernel()
	wd := NewWatchdog(k, "wd", sim.US(10))
	wd.Start()
	var d sim.Time
	sock := tlm.NewInitiatorSocket("sw")
	sock.Bind(wd)
	if resp := sock.Write32(0, 1, &d); !resp.OK() {
		t.Fatal(resp)
	}
	if wd.Kicks() != 1 {
		t.Error("TLM kick not counted")
	}
	if err := k.Run(sim.US(25)); err != nil {
		t.Fatal(err)
	}
	v, resp := sock.Read32(0, &d)
	if !resp.OK() || v == 0 {
		t.Errorf("timeout register = %d, %v", v, resp)
	}
}

const lockstepProg = `
	addi r1, r0, 0
	addi r2, r0, 10
loop:
	sw   r1, 512(r0)
	addi r1, r1, 1
	blt  r1, r2, loop
	halt
`

func buildLockstep(t *testing.T) (*sim.Kernel, *Lockstep) {
	t.Helper()
	k := sim.NewKernel()
	mk := func(name string) *CPU {
		cpu := NewCPU(name)
		ram := tlm.NewMemory(name+".ram", 0, 64*1024)
		ram.ReadLatency = sim.NS(10)
		bus := tlm.NewRouter(name + ".bus")
		bus.MustMap("ram", 0, 64*1024, ram)
		cpu.Bus.Bind(bus)
		LoadProgram(ram, 0x1000, MustAssemble(lockstepProg))
		cpu.Reset(0x1000)
		return cpu
	}
	return k, NewLockstep(mk("p"), mk("s"))
}

func TestLockstepCleanRun(t *testing.T) {
	k, ls := buildLockstep(t)
	detected, err := RunLockstep(k, ls, sim.US(1), 10000)
	if err != nil {
		t.Fatal(err)
	}
	if detected {
		t.Errorf("clean run flagged: %s", ls.Detail())
	}
	p, s := ls.Stores()
	if p != 10 || s != 10 {
		t.Errorf("stores = %d, %d", p, s)
	}
}

func TestLockstepDetectsSEU(t *testing.T) {
	k, ls := buildLockstep(t)
	// Flip a bit in the shadow core's loop counter mid-run. The small
	// quantum keeps both cores synchronized finely enough that the
	// injection lands while the loop is still executing.
	k.Thread("inj", func(ctx *sim.ThreadCtx) {
		ctx.WaitTime(sim.NS(300))
		ls.Shadow.FlipRegBit(1, 3)
	})
	detected, err := RunLockstep(k, ls, sim.NS(50), 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !detected {
		t.Error("lockstep missed register SEU")
	}
	if ls.Detail() == "" {
		t.Error("no divergence detail")
	}
}

func TestRTOSNoMissesWhenSchedulable(t *testing.T) {
	k := sim.NewKernel()
	s := NewScheduler(k, sim.MS(10))
	if err := s.Add(&Task{Name: "ctrl", Period: sim.MS(1), WCET: sim.US(200)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&Task{Name: "log", Period: sim.MS(2), WCET: sim.US(100)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Misses() != 0 {
		t.Errorf("misses = %d", s.Misses())
	}
	if len(s.Records()) != 15 { // 10 ctrl + 5 log
		t.Errorf("records = %d", len(s.Records()))
	}
}

func TestRTOSDelayFaultCausesMisses(t *testing.T) {
	k := sim.NewKernel()
	s := NewScheduler(k, sim.MS(10))
	task := &Task{Name: "ctrl", Period: sim.MS(1), Deadline: sim.US(500), WCET: sim.US(200)}
	if err := s.Add(task); err != nil {
		t.Fatal(err)
	}
	task.ExtraDelay = sim.US(400) // 200+400 > 500 deadline
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Misses() != 10 {
		t.Errorf("misses = %d, want 10 (every job)", s.Misses())
	}
	if s.MissesFor("ctrl") != 10 {
		t.Error("MissesFor mismatch")
	}
}

func TestRTOSQuantumHidesMisses(t *testing.T) {
	// The exact (quantum 0) run sees the deadline misses; a huge
	// quantum makes the external observation miss them.
	run := func(quantum sim.Time) (trueMisses, observedMisses int) {
		k := sim.NewKernel()
		s := NewScheduler(k, sim.MS(10))
		s.Quantum = quantum
		task := &Task{Name: "ctrl", Period: sim.MS(1), Deadline: sim.US(500), WCET: sim.US(200), ExtraDelay: sim.US(400)}
		if err := s.Add(task); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Misses(), s.ObservedMisses()
	}
	tm0, om0 := run(0)
	if tm0 != om0 || tm0 == 0 {
		t.Errorf("quantum 0: true %d, observed %d (must agree)", tm0, om0)
	}
	tmBig, omBig := run(sim.MS(100))
	if tmBig != tm0 {
		t.Errorf("true misses changed with quantum: %d vs %d", tmBig, tm0)
	}
	if omBig >= tm0 {
		t.Errorf("huge quantum should hide misses from observation: observed %d of %d", omBig, tmBig)
	}
}

func TestRTOSRejectsBadTasks(t *testing.T) {
	k := sim.NewKernel()
	s := NewScheduler(k, sim.MS(1))
	if err := s.Add(&Task{Name: "x", Period: 0, WCET: 1}); err == nil {
		t.Error("zero period accepted")
	}
	if err := s.Add(&Task{Name: "x", Period: sim.MS(1), WCET: sim.MS(2)}); err == nil {
		t.Error("WCET > deadline accepted")
	}
}

// Property: ECC corrects every single-bit flip of any word and
// detects every double flip in data bits.
func TestPropertyECCSECDED(t *testing.T) {
	f := func(v uint32, b1, b2 uint8) bool {
		c := eccEncode(v)
		bit1 := uint(b1 % 32)
		got, st := eccDecode(v^1<<bit1, c)
		if st != ECCCorrected || got != v {
			return false
		}
		bit2 := uint(b2 % 32)
		if bit2 == bit1 {
			return true
		}
		_, st = eccDecode(v^1<<bit1^1<<bit2, c)
		return st == ECCUncorrectable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: assembler output decodes to legal instructions.
func TestPropertyAssemblerProducesLegalWords(t *testing.T) {
	f := func(a, b uint8) bool {
		src := `
			addi r1, r0, ` + itoa(int64(a)) + `
			addi r2, r0, ` + itoa(int64(b)) + `
			add  r3, r1, r2
			sw   r3, 0(r0)
			halt`
		words, err := Assemble(src)
		if err != nil {
			return false
		}
		for _, w := range words {
			if _, err := Decode(w); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func BenchmarkCPUInstructions(b *testing.B) {
	k := sim.NewKernel()
	cpu := NewCPU("cpu0")
	ram := tlm.NewMemory("ram", 0, 64*1024)
	bus := tlm.NewRouter("bus")
	bus.MustMap("ram", 0, 64*1024, ram)
	cpu.Bus.Bind(bus)
	LoadProgram(ram, 0x1000, MustAssemble(`
	loop:
		addi r1, r1, 1
		jal r0, loop
	`))
	cpu.Reset(0x1000)
	b.ResetTimer()
	var count uint64
	k.Thread("cpu", func(ctx *sim.ThreadCtx) {
		qk := tlm.NewQuantumKeeper(ctx, sim.US(10))
		_ = cpu.Run(ctx, qk, uint64(b.N))
		count = cpu.Instructions()
	})
	if err := k.Run(sim.TimeMax); err != nil {
		b.Fatal(err)
	}
	if count < uint64(b.N) {
		b.Fatalf("ran %d of %d", count, b.N)
	}
}
