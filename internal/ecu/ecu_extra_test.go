package ecu

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/tlm"
)

func TestCPUAccessors(t *testing.T) {
	cpu := NewCPU("core0")
	if cpu.Name() != "core0" {
		t.Error("Name")
	}
	cpu.Reset(0x1000)
	if cpu.PC() != 0x1000 {
		t.Error("PC")
	}
	if cpu.InIRQ() {
		t.Error("fresh core in IRQ")
	}
	cpu.FlipPCBit(2)
	if cpu.PC() != 0x1004 {
		t.Errorf("PC after flip = %#x", cpu.PC())
	}
	cpu.FlipPCBit(64) // out of range: no-op
	if cpu.PC() != 0x1004 {
		t.Error("out-of-range PC flip changed state")
	}
	cpu.FlipRegBit(0, 3) // r0 immune
	if cpu.Reg(0) != 0 {
		t.Error("r0 flipped")
	}
}

func TestOpcodeStringsComplete(t *testing.T) {
	for op := OpNOP; op < opCount; op++ {
		if strings.HasPrefix(op.String(), "Opcode(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
	if !strings.HasPrefix(Opcode(200).String(), "Opcode(") {
		t.Error("unknown opcode not flagged")
	}
}

func TestDisassemblyAllFormats(t *testing.T) {
	cases := []Instr{
		{Op: OpLUI, Rd: 3, Imm: 5},
		{Op: OpJAL, Rd: 14, Imm: -2},
		{Op: OpJALR, Rd: 0, Rs1: 14, Imm: 0},
		{Op: OpRETI},
		{Op: OpBGE, Rs1: 1, Rs2: 2, Imm: 8},
	}
	for _, ins := range cases {
		s := ins.String()
		if s == "" || strings.Contains(s, "?") {
			t.Errorf("disasm of %v = %q", ins.Op, s)
		}
	}
}

func TestCPUJALRAndLUI(t *testing.T) {
	k, cpu, ram := buildSystem(t, `
		lui  r1, 1        ; r1 = 1<<20 = 0x100000
		addi r2, r0, 0
		jal  r14, sub     ; call
		sw   r2, 256(r0)
		halt
	sub:
		addi r2, r0, 9
		jalr r0, r14, 0   ; return
	`)
	k.Thread("cpu", func(ctx *sim.ThreadCtx) {
		qk := tlm.NewQuantumKeeper(ctx, 0)
		if err := cpu.Run(ctx, qk, 100); err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	if cpu.Reg(1) != 1<<20 {
		t.Errorf("lui r1 = %#x", cpu.Reg(1))
	}
	if ram.Peek(256, 1)[0] != 9 {
		t.Errorf("call/return result = %d", ram.Peek(256, 1)[0])
	}
}

func TestCPULoadStoreErrors(t *testing.T) {
	k, cpu, _ := buildSystem(t, `
		lui r1, 1024      ; 0x40000000: unmapped
		lw  r2, 0(r1)
		halt
	`)
	var runErr error
	k.Thread("cpu", func(ctx *sim.ThreadCtx) {
		qk := tlm.NewQuantumKeeper(ctx, 0)
		runErr = cpu.Run(ctx, qk, 100)
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	if runErr == nil || !strings.Contains(runErr.Error(), "load") {
		t.Errorf("load error = %v", runErr)
	}

	k2, cpu2, _ := buildSystem(t, `
		lui r1, 1024
		sw  r2, 0(r1)
		halt
	`)
	k2.Thread("cpu", func(ctx *sim.ThreadCtx) {
		qk := tlm.NewQuantumKeeper(ctx, 0)
		runErr = cpu2.Run(ctx, qk, 100)
	})
	if err := k2.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	if runErr == nil || !strings.Contains(runErr.Error(), "store") {
		t.Errorf("store error = %v", runErr)
	}
}

func TestECCStatusStringsAndName(t *testing.T) {
	if ECCOk.String() != "ok" || ECCCorrected.String() != "corrected" || ECCUncorrectable.String() != "uncorrectable" {
		t.Error("status strings")
	}
	if !strings.HasPrefix(ECCStatus(9).String(), "ECCStatus(") {
		t.Error("unknown status")
	}
	m := NewECCMemory("mem0", 0, 64)
	if m.Name() != "mem0" {
		t.Error("name")
	}
}

func TestECCTransportDbg(t *testing.T) {
	m := NewECCMemory("m", 0, 64)
	p := tlm.NewWrite(8, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if n := m.TransportDbg(p); n != 8 || !p.Response.OK() {
		t.Fatalf("dbg write = %d, %v", n, p.Response)
	}
	q := tlm.NewRead(8, 8)
	if n := m.TransportDbg(q); n != 8 {
		t.Fatalf("dbg read = %d", n)
	}
	for i, want := range []byte{1, 2, 3, 4, 5, 6, 7, 8} {
		if q.Data[i] != want {
			t.Errorf("dbg data[%d] = %d", i, q.Data[i])
		}
	}
	// Unaligned and out-of-range debug accesses fail cleanly.
	bad := tlm.NewRead(2, 4)
	if m.TransportDbg(bad); bad.Response == tlm.RespOK {
		t.Error("unaligned dbg accepted")
	}
	oob := tlm.NewRead(64, 4)
	if m.TransportDbg(oob); oob.Response == tlm.RespOK {
		t.Error("oob dbg accepted")
	}
}

func TestECCFlipStoredBitRanges(t *testing.T) {
	m := NewECCMemory("m", 0, 64)
	if err := m.FlipStoredBit(0, 35); err != nil { // check-bit flip
		t.Fatal(err)
	}
	var d sim.Time
	q := tlm.NewRead(0, 4)
	m.BTransport(q, &d)
	if !q.Response.OK() {
		t.Error("check-bit flip not corrected")
	}
	corr, _ := m.Stats()
	if corr != 1 {
		t.Errorf("corrected = %d", corr)
	}
	if err := m.FlipStoredBit(0, 39); err == nil {
		t.Error("bit 39 accepted")
	}
	if err := m.FlipStoredBit(999, 0); err == nil {
		t.Error("unmapped flip accepted")
	}
}

func TestLockstepAccessors(t *testing.T) {
	k, ls := buildLockstep(t)
	if ls.Diverged() {
		t.Error("fresh lockstep diverged")
	}
	// Run only the primary: FinalCheck must flag the count mismatch.
	k.Thread("primary-only", func(ctx *sim.ThreadCtx) {
		qk := tlm.NewQuantumKeeper(ctx, sim.US(1))
		_ = ls.Primary.Run(ctx, qk, 10000)
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	ls.FinalCheck()
	if !ls.Diverged() || !strings.Contains(ls.Detail(), "count mismatch") {
		t.Errorf("diverged=%v detail=%q", ls.Diverged(), ls.Detail())
	}
	// FinalCheck after divergence is a no-op.
	detail := ls.Detail()
	ls.FinalCheck()
	if ls.Detail() != detail {
		t.Error("FinalCheck overwrote detail")
	}
}

func TestRTOSObservedNeverExceedsTrue(t *testing.T) {
	for _, q := range []sim.Time{0, sim.US(300), sim.MS(2), sim.MS(10)} {
		k := sim.NewKernel()
		s := NewScheduler(k, sim.MS(20))
		s.Quantum = q
		if err := s.Add(&Task{Name: "t", Period: sim.MS(1), Deadline: sim.US(600), WCET: sim.US(500), ExtraDelay: sim.US(300)}); err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		k.Shutdown()
		if s.ObservedMisses() > s.Misses() {
			t.Errorf("quantum %v: observed %d > true %d", q, s.ObservedMisses(), s.Misses())
		}
		for _, r := range s.Records() {
			if r.ObservedCompletion > r.Completion {
				t.Errorf("quantum %v: observed completion after true completion", q)
			}
		}
	}
}

func TestWatchdogDisabledIgnoresKickAndExpiry(t *testing.T) {
	k := sim.NewKernel()
	wd := NewWatchdog(k, "wd", sim.US(10))
	wd.Kick() // not started: ignored
	if wd.Kicks() != 0 {
		t.Error("kick counted while stopped")
	}
	wd.Start()
	wd.Stop()
	if err := k.Run(sim.US(100)); err != nil {
		t.Fatal(err)
	}
	if wd.Timeouts() != 0 {
		t.Error("stopped watchdog fired")
	}
}
