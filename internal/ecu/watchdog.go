package ecu

import (
	"repro/internal/sim"
	"repro/internal/tlm"
)

// Watchdog is a memory-mapped timeout monitor: software must write
// the kick register (offset 0) within Timeout of the previous kick,
// otherwise the watchdog fires — incrementing the timeout count,
// notifying TimeoutEvent and invoking OnTimeout. It detects the
// "additional delay" error class (Sec. 3.4): a task that still
// produces right values but too late stops kicking in time.
type Watchdog struct {
	name string
	k    *sim.Kernel
	// Timeout is the maximum allowed kick interval.
	Timeout sim.Time
	// OnTimeout is called (once per expiry) when the window is missed.
	OnTimeout func()

	timer    *sim.Event
	enabled  bool
	timeouts uint64
	kicks    uint64
}

// NewWatchdog creates a stopped watchdog.
func NewWatchdog(k *sim.Kernel, name string, timeout sim.Time) *Watchdog {
	w := &Watchdog{name: name, k: k, Timeout: timeout, timer: k.NewEvent(name + ".timer")}
	k.MethodNoInit(name+".expire", w.expire, w.timer)
	return w
}

// Rearm re-creates the watchdog's timer event and expiry process on a
// freshly Reset kernel and clears the counters, following the
// sim.Rearmable convention. Call it at the same point in the
// re-elaboration order that NewWatchdog held in the original build.
func (w *Watchdog) Rearm(k *sim.Kernel) {
	w.k = k
	w.timer = k.NewEvent(w.name + ".timer")
	k.MethodNoInit(w.name+".expire", w.expire, w.timer)
	w.enabled = false
	w.timeouts = 0
	w.kicks = 0
}

// Start arms the watchdog; the first window begins now.
func (w *Watchdog) Start() {
	w.enabled = true
	w.timer.Notify(w.Timeout)
}

// Stop disarms the watchdog.
func (w *Watchdog) Stop() {
	w.enabled = false
	w.timer.Cancel()
}

// Kick restarts the window.
func (w *Watchdog) Kick() {
	if !w.enabled {
		return
	}
	w.kicks++
	// Cancel first: IEEE 1666 notify rules keep the *earlier* pending
	// notification, and a kick always pushes the expiry later.
	w.timer.Cancel()
	w.timer.Notify(w.Timeout)
}

func (w *Watchdog) expire() {
	if !w.enabled {
		return
	}
	w.timeouts++
	if w.OnTimeout != nil {
		w.OnTimeout()
	}
	// Re-arm: a stuck system keeps counting windows.
	w.timer.Notify(w.Timeout)
}

// Timeouts reports expired windows.
func (w *Watchdog) Timeouts() uint64 { return w.timeouts }

// Kicks reports accepted kicks.
func (w *Watchdog) Kicks() uint64 { return w.kicks }

// BTransport implements tlm.Target: any write to offset 0 kicks; a
// read of offset 0 returns the timeout count (diagnosis register).
func (w *Watchdog) BTransport(p *tlm.Payload, delay *sim.Time) {
	switch p.Command {
	case tlm.CmdWrite:
		w.Kick()
	case tlm.CmdRead:
		v := uint32(w.timeouts)
		for i := range p.Data {
			p.Data[i] = byte(v >> (8 * uint(i%4)))
		}
	}
	p.Response = tlm.RespOK
}
