package ecu

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stressor"
)

// Checkpoint-tree session for the ECU runner, mirroring caps/tree.go:
// the plain session generalized over stressor.TreeCore with optional
// convergence early-exit. ECU faults are permanent register/memory
// upsets, so most runs retain latent residue and never converge — the
// tree's value here is prefix sharing; early-exit mostly exercises the
// soundness contract (a run that does not converge must run out).

// NewTreeSession implements stressor.TreeCheckpointer.
func (r *Runner) NewTreeSession(cfg stressor.TreeConfig) stressor.CheckpointSession {
	return &ecuTreeSession{r: r, cfg: cfg}
}

// trajectory returns the golden trajectory for the given hash stride,
// recording it on first use against a dedicated fault-free slot.
func (r *Runner) trajectory(stride sim.Time) (*stressor.GoldenTrajectory, error) {
	stride = stressor.NormalizeStride(stride, r.cfg.Horizon)
	r.trajMu.Lock()
	defer r.trajMu.Unlock()
	if tr, ok := r.trajs[stride]; ok {
		return tr, nil
	}
	slot := r.buildSlot()
	defer slot.k.Shutdown()
	slot.beginRun()
	tr, err := stressor.RecordTrajectory(slot.k, slot, stride, r.cfg.Horizon)
	if err != nil {
		return nil, err
	}
	if r.trajs == nil {
		r.trajs = make(map[sim.Time]*stressor.GoldenTrajectory)
	}
	r.trajs[stride] = tr
	return tr, nil
}

// earlyExitOutcome precomputes the outcome every converged run
// inherits: the golden observation with only the activation flag
// raised.
func (r *Runner) earlyExitOutcome() (fault.Classification, string) {
	r.eeOnce.Do(func() {
		ob := r.golden
		ob.Activated = true
		r.eeClass = analysis.Classify(r.golden, ob)
		r.eeDetail = analysis.Describe(ob)
	})
	return r.eeClass, r.eeDetail
}

// ecuTreeSession is one worker's tree session: a private slot plus the
// shared TreeCore machinery.
type ecuTreeSession struct {
	r    *Runner
	cfg  stressor.TreeConfig
	core stressor.TreeCore
	st   stressor.Stressor
	slot *ecuSlot
	traj *stressor.GoldenTrajectory
}

func (s *ecuTreeSession) init() error {
	if s.core.K != nil {
		return nil
	}
	slot := s.r.buildSlot()
	slot.beginRun()
	s.slot = slot
	s.core = stressor.TreeCore{
		Cfg: s.cfg, K: slot.k, Model: slot, Pool: &s.r.nodePool,
		Rebuild: func() {
			s.r.rearmSlot(slot)
			slot.beginRun()
		},
	}
	s.core.Init()
	if s.cfg.EarlyExit {
		tr, err := s.r.trajectory(s.cfg.HashStride)
		if err != nil {
			return err
		}
		s.traj = tr
	}
	return nil
}

// Run implements stressor.CheckpointSession, producing the exact
// outcome Runner.RunScenario yields for the same scenario.
func (s *ecuTreeSession) Run(sc fault.Scenario, fork sim.Time) fault.Outcome {
	ob, converged, err := s.execute(sc, fork)
	if err != nil {
		return fault.Outcome{Scenario: sc, Class: fault.DetectedSafe, Detail: "campaign error: " + err.Error()}
	}
	if converged {
		class, detail := s.r.earlyExitOutcome()
		return fault.Outcome{Scenario: sc, Class: class, Detail: detail}
	}
	ob.Activated = len(sc.Faults) > 0
	class := analysis.Classify(s.r.golden, ob)
	return fault.Outcome{Scenario: sc, Class: class, Detail: analysis.Describe(ob)}
}

// Close implements stressor.CheckpointSession.
func (s *ecuTreeSession) Close() {
	s.core.Recycle()
	if s.slot != nil {
		s.slot.k.Shutdown()
	}
}

// Recycle implements stressor.RecyclableSession.
func (s *ecuTreeSession) Recycle() { s.core.Recycle() }

func (s *ecuTreeSession) execute(sc fault.Scenario, fork sim.Time) (analysis.Observation, bool, error) {
	if err := s.init(); err != nil {
		return analysis.Observation{}, false, err
	}
	if err := s.core.Establish(fork); err != nil {
		return analysis.Observation{}, false, err
	}
	s.core.MarkDirty()
	s.st.Respawn(s.slot.k, s.slot.reg, sc, s.r.cfg.Horizon)
	if s.traj != nil {
		converged, at, err := s.traj.RunToHorizon(s.slot.k, s.slot, &s.st)
		if err != nil {
			return analysis.Observation{}, false, err
		}
		if converged {
			s.core.NoteEarlyExit(s.r.cfg.Horizon - at)
			return analysis.Observation{}, true, nil
		}
	} else if err := s.slot.k.RunUntil(s.r.cfg.Horizon); err != nil {
		return analysis.Observation{}, false, err
	}
	if errs := s.st.InjectionErrors(); len(errs) > 0 {
		return analysis.Observation{}, false, fmt.Errorf("ecu: scenario %s: %v", sc.ID, errs[0])
	}
	ob, _, _, err := s.r.finishRun(s.slot)
	return ob, false, err
}
