package ecu

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/tlm"
)

// ECC implements SECDED (single-error-correct, double-error-detect)
// Hamming coding of 32-bit words: 6 Hamming check bits plus one
// overall parity bit. It is the canonical memory protection mechanism
// whose diagnostic coverage the FMEDA experiments credit.

// ECCStatus is the result of decoding a protected word.
type ECCStatus uint8

const (
	// ECCOk: no error.
	ECCOk ECCStatus = iota
	// ECCCorrected: a single bit error was corrected.
	ECCCorrected
	// ECCUncorrectable: a double bit error was detected.
	ECCUncorrectable
)

// String names the status.
func (s ECCStatus) String() string {
	switch s {
	case ECCOk:
		return "ok"
	case ECCCorrected:
		return "corrected"
	case ECCUncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("ECCStatus(%d)", uint8(s))
	}
}

// codeword layout: positions 1..38; check bits at powers of two
// (1,2,4,8,16,32), data bits fill the remaining 32 positions in
// ascending order. Position 0 holds the overall parity bit.

// dataPositions[i] is the codeword position of data bit i.
var dataPositions = func() [32]int {
	var out [32]int
	i := 0
	for pos := 1; pos <= 38 && i < 32; pos++ {
		if pos&(pos-1) == 0 { // power of two: check bit
			continue
		}
		out[i] = pos
		i++
	}
	return out
}()

// eccEncode computes the 7 check bits (6 Hamming + overall parity in
// bit 6) for a data word.
func eccEncode(data uint32) uint8 {
	// Hamming bits: parity over codeword positions with that bit set.
	var check uint8
	for b := 0; b < 6; b++ {
		mask := 1 << b
		parity := 0
		for i := 0; i < 32; i++ {
			if dataPositions[i]&mask != 0 && data>>uint(i)&1 == 1 {
				parity ^= 1
			}
		}
		if parity == 1 {
			check |= 1 << b
		}
	}
	// Overall parity over data bits and the 6 check bits.
	parity := 0
	for i := 0; i < 32; i++ {
		if data>>uint(i)&1 == 1 {
			parity ^= 1
		}
	}
	for b := 0; b < 6; b++ {
		if check>>uint(b)&1 == 1 {
			parity ^= 1
		}
	}
	if parity == 1 {
		check |= 1 << 6
	}
	return check
}

// parity32 computes the parity of a 32-bit word.
func parity32(v uint32) uint8 {
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return uint8(v & 1)
}

// eccDecode checks and (when possible) corrects a received word.
// The syndrome compares received check bits against ones recomputed
// from received data; the overall parity is computed over the whole
// received codeword (data + check + parity bit), so any single flip —
// including in a check bit — makes it odd.
func eccDecode(data uint32, check uint8) (corrected uint32, status ECCStatus) {
	expect := eccEncode(data)
	syndrome := (check ^ expect) & 0x3f
	var chkParity uint8
	for b := 0; b < 7; b++ {
		chkParity ^= check >> uint(b) & 1
	}
	parityErr := parity32(data)^chkParity == 1
	switch {
	case syndrome == 0 && !parityErr:
		return data, ECCOk
	case parityErr:
		// Single-bit error at codeword position = syndrome (0 means
		// the overall parity bit itself flipped; check-bit positions
		// mean a check bit flipped — data unaffected either way).
		if syndrome != 0 && int(syndrome)&(int(syndrome)-1) != 0 {
			// Data-bit position: locate and flip.
			for i := 0; i < 32; i++ {
				if dataPositions[i] == int(syndrome) {
					return data ^ 1<<uint(i), ECCCorrected
				}
			}
		}
		return data, ECCCorrected
	default:
		// Non-zero syndrome with good parity: double error.
		return data, ECCUncorrectable
	}
}

// ECCMemory is a word-organized memory target with SECDED protection:
// reads transparently correct single-bit upsets and fail (bus error)
// on uncorrectable double errors. Accesses must be 4-byte aligned
// whole words, matching the AE32 bus.
type ECCMemory struct {
	name  string
	base  uint64
	words []uint32
	check []uint8

	ReadLatency  sim.Time
	WriteLatency sim.Time

	corrected     uint64
	uncorrectable uint64
	// CorrectionDelay models the extra read latency of an ECC repair
	// (the "error correction that may cause deadline violations" of
	// Sec. 3.4).
	CorrectionDelay sim.Time
}

// zeroCheck is the codeword check byte of a zeroed data word,
// precomputed so bulk initialization does not re-derive it per cell.
var zeroCheck = eccEncode(0)

// NewECCMemory creates size bytes (rounded down to whole words) at
// base.
func NewECCMemory(name string, base uint64, size int) *ECCMemory {
	n := size / 4
	m := &ECCMemory{name: name, base: base, words: make([]uint32, n), check: make([]uint8, n)}
	for i := range m.check {
		m.check[i] = zeroCheck
	}
	return m
}

// Clear returns the memory to its freshly constructed all-zero state
// and zeroes the error counters, without reallocating the backing
// arrays. Campaign runners use it to re-seed a reused core's memory
// image between runs.
func (m *ECCMemory) Clear() {
	clear(m.words)
	for i := range m.check {
		m.check[i] = zeroCheck
	}
	m.corrected = 0
	m.uncorrectable = 0
}

// Name reports the instance name.
func (m *ECCMemory) Name() string { return m.name }

// Stats reports corrected and uncorrectable error counts — the
// diagnostic-coverage evidence for FMEDA.
func (m *ECCMemory) Stats() (corrected, uncorrectable uint64) {
	return m.corrected, m.uncorrectable
}

func (m *ECCMemory) index(addr uint64, n int) (int, bool) {
	if addr%4 != 0 || n != 4 {
		return 0, false
	}
	if addr < m.base {
		return 0, false
	}
	i := int((addr - m.base) / 4)
	if i >= len(m.words) {
		return 0, false
	}
	return i, true
}

// BTransport implements tlm.Target.
func (m *ECCMemory) BTransport(p *tlm.Payload, delay *sim.Time) {
	i, ok := m.index(p.Address, len(p.Data))
	if !ok {
		if p.Address%4 != 0 || len(p.Data) != 4 {
			p.Response = tlm.RespBurstError
		} else {
			p.Response = tlm.RespAddressError
		}
		return
	}
	switch p.Command {
	case tlm.CmdRead:
		data, status := eccDecode(m.words[i], m.check[i])
		*delay += m.ReadLatency
		switch status {
		case ECCCorrected:
			m.corrected++
			*delay += m.CorrectionDelay
			// Scrub: write back the corrected word.
			m.words[i] = data
			m.check[i] = eccEncode(data)
		case ECCUncorrectable:
			m.uncorrectable++
			p.Response = tlm.RespGenericError
			return
		}
		p.Data[0] = byte(data)
		p.Data[1] = byte(data >> 8)
		p.Data[2] = byte(data >> 16)
		p.Data[3] = byte(data >> 24)
	case tlm.CmdWrite:
		v := uint32(p.Data[0]) | uint32(p.Data[1])<<8 | uint32(p.Data[2])<<16 | uint32(p.Data[3])<<24
		m.words[i] = v
		m.check[i] = eccEncode(v)
		*delay += m.WriteLatency
	default:
		p.Response = tlm.RespCommandError
		return
	}
	p.Response = tlm.RespOK
}

// TransportDbg implements tlm.DebugTarget (no correction, no stats).
func (m *ECCMemory) TransportDbg(p *tlm.Payload) int {
	// Debug access works in whole words from the aligned base.
	if p.Address%4 != 0 || len(p.Data)%4 != 0 {
		p.Response = tlm.RespBurstError
		return 0
	}
	n := len(p.Data) / 4
	for w := 0; w < n; w++ {
		i, ok := m.index(p.Address+uint64(4*w), 4)
		if !ok {
			p.Response = tlm.RespAddressError
			return 0
		}
		switch p.Command {
		case tlm.CmdRead:
			v := m.words[i]
			p.Data[4*w] = byte(v)
			p.Data[4*w+1] = byte(v >> 8)
			p.Data[4*w+2] = byte(v >> 16)
			p.Data[4*w+3] = byte(v >> 24)
		case tlm.CmdWrite:
			v := uint32(p.Data[4*w]) | uint32(p.Data[4*w+1])<<8 | uint32(p.Data[4*w+2])<<16 | uint32(p.Data[4*w+3])<<24
			m.words[i] = v
			m.check[i] = eccEncode(v)
		}
	}
	p.Response = tlm.RespOK
	return len(p.Data)
}

// FlipStoredBit injects an upset directly into the stored codeword:
// bit 0..31 hits the data word, 32..38 hits the check bits. The ECC
// logic sees it on the next read.
func (m *ECCMemory) FlipStoredBit(addr uint64, bit uint) error {
	i, ok := m.index(addr, 4)
	if !ok {
		return fmt.Errorf("ecu: FlipStoredBit(%#x): unmapped or unaligned", addr)
	}
	switch {
	case bit < 32:
		m.words[i] ^= 1 << bit
	case bit < 39:
		m.check[i] ^= 1 << (bit - 32)
	default:
		return fmt.Errorf("ecu: FlipStoredBit: bit %d out of codeword", bit)
	}
	return nil
}
