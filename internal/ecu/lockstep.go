package ecu

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/tlm"
)

// Lockstep runs two AE32 cores over the same program and compares
// their store streams — the classic dual-core lockstep safety
// mechanism of automotive microcontrollers. The cores run against
// separate memories (so a fault in one does not contaminate the
// other); the comparator flags the first divergent store. Detection
// is at store granularity: a corrupted register that never reaches a
// store stays latent, exactly as in real lockstep designs.
type Lockstep struct {
	Primary  *CPU
	Shadow   *CPU
	pLog     []storeRec
	sLog     []storeRec
	diverged bool
	detail   string
}

type storeRec struct {
	addr, val uint32
}

// NewLockstep wires the comparator onto two cores.
func NewLockstep(primary, shadow *CPU) *Lockstep {
	ls := &Lockstep{Primary: primary, Shadow: shadow}
	primary.StoreHook = func(addr, val uint32) { ls.record(&ls.pLog, &ls.sLog, addr, val, "primary") }
	shadow.StoreHook = func(addr, val uint32) { ls.record(&ls.sLog, &ls.pLog, addr, val, "shadow") }
	return ls
}

// record appends to own log and compares against the counterpart at
// the same index if already present.
func (ls *Lockstep) record(own, other *[]storeRec, addr, val uint32, who string) {
	idx := len(*own)
	*own = append(*own, storeRec{addr, val})
	if idx < len(*other) {
		o := (*other)[idx]
		if o.addr != addr || o.val != val {
			ls.flag(idx, who, addr, val, o)
		}
	}
}

func (ls *Lockstep) flag(idx int, who string, addr, val uint32, o storeRec) {
	if ls.diverged {
		return
	}
	ls.diverged = true
	ls.detail = fmt.Sprintf("store %d: %s wrote %#x=%#x, counterpart wrote %#x=%#x",
		idx, who, addr, val, o.addr, o.val)
}

// Reset clears the comparator for another run, keeping the store-log
// capacity. The store hooks installed by NewLockstep stay attached.
func (ls *Lockstep) Reset() {
	ls.pLog = ls.pLog[:0]
	ls.sLog = ls.sLog[:0]
	ls.diverged = false
	ls.detail = ""
}

// FinalCheck compares store counts after both cores halt: a core that
// stopped storing (e.g. crashed into a loop) also counts as
// divergence.
func (ls *Lockstep) FinalCheck() {
	if ls.diverged {
		return
	}
	if len(ls.pLog) != len(ls.sLog) {
		ls.diverged = true
		ls.detail = fmt.Sprintf("store count mismatch: primary %d, shadow %d", len(ls.pLog), len(ls.sLog))
	}
}

// Diverged reports whether the comparator fired.
func (ls *Lockstep) Diverged() bool { return ls.diverged }

// Detail describes the first divergence.
func (ls *Lockstep) Detail() string { return ls.detail }

// Stores reports the store counts seen so far.
func (ls *Lockstep) Stores() (primary, shadow int) { return len(ls.pLog), len(ls.sLog) }

// RunLockstep executes both cores to completion on a fresh kernel
// thread pair and returns whether the comparator detected divergence.
// quantum controls temporal decoupling for both cores.
func RunLockstep(k *sim.Kernel, ls *Lockstep, quantum sim.Time, maxInstrs uint64) (detected bool, err error) {
	errs := make([]error, 2)
	k.Thread("lockstep.primary", func(ctx *sim.ThreadCtx) {
		qk := tlm.NewQuantumKeeper(ctx, quantum)
		errs[0] = ls.Primary.Run(ctx, qk, maxInstrs)
	})
	k.Thread("lockstep.shadow", func(ctx *sim.ThreadCtx) {
		qk := tlm.NewQuantumKeeper(ctx, quantum)
		errs[1] = ls.Shadow.Run(ctx, qk, maxInstrs)
	})
	if err := k.Run(sim.TimeMax); err != nil {
		return false, err
	}
	ls.FinalCheck()
	// A trap (bus error / illegal opcode) on either core is likewise a
	// detection: real lockstep MCUs escalate traps to the safety path.
	for _, e := range errs {
		if e != nil {
			ls.diverged = true
			if ls.detail == "" {
				ls.detail = "core trap: " + e.Error()
			}
		}
	}
	return ls.diverged, nil
}
