package ecu

import (
	"repro/internal/sim"
)

// This file hosts the campaign-path process bodies of the ECU runner
// as method-process state machines. CPU.Run's thread form is the
// natural way to write a temporally decoupled core loop, but a thread
// carries a goroutine stack, and a goroutine stack cannot be
// checkpointed — so the campaign runner drives the same loop through
// coreRunner, which unrolls the thread's blocking points (quantum
// syncs) into explicit phases. The instruction-by-instruction timing,
// the sync instants and the per-instant process ordering are identical
// to CPU.Run; only the representation of "where the loop is parked"
// changes from a stack to a phase byte.

// coreRunner phases: crRun executes instructions from the top of an
// activation; crBound means the last activation parked on a quantum
// sync and must re-check the instruction bound on resume (mirroring
// CPU.Run's post-SyncIfNeeded check); crFinish means the core is done
// and the activation only completes the final sync.
const (
	crRun uint8 = iota
	crBound
	crFinish
)

// coreRunner drives one AE32 core as a method process with temporal
// decoupling, equivalent to CPU.Run on a thread: consumed time
// accumulates in local and the process re-notifies itself (the method
// analogue of QuantumKeeper.Sync) when local exceeds the quantum.
type coreRunner struct {
	cpu       *CPU
	quantum   sim.Time
	maxInstrs uint64
	name      string
	// onDone is bound once at slot construction; it publishes the
	// core's completion (error and done flag) into the slot.
	onDone func(error)
	stepFn func()

	ev    *sim.Event
	local sim.Time
	phase uint8
	err   error
}

// elaborate registers the runner's event and method process on the
// kernel and resets the per-run phase state. Call it at the same point
// in the elaboration order every run — process ids depend on it.
func (c *coreRunner) elaborate(k *sim.Kernel) {
	c.local = 0
	c.phase = crRun
	c.err = nil
	c.ev = k.NewEvent(c.name + ".timer")
	k.Method(c.name, c.stepFn, c.ev)
}

// step is one activation: resume from the parked phase, then execute
// instructions until the core halts, faults, hits the bound or
// exceeds the quantum.
func (c *coreRunner) step() {
	switch c.phase {
	case crBound:
		// Resuming from a quantum sync: CPU.Run checks the instruction
		// bound right after SyncIfNeeded returns.
		c.phase = crRun
		if c.maxInstrs > 0 && c.cpu.instrs >= c.maxInstrs {
			c.finish(nil)
			return
		}
	case crFinish:
		c.complete()
		return
	}
	for !c.cpu.halted {
		var d sim.Time
		if err := c.cpu.Step(&d); err != nil {
			// The failing step's own consumed time is not synchronized,
			// exactly as CPU.Run's error path (d was never Inc'd).
			c.finish(err)
			return
		}
		c.local += d
		if c.local > c.quantum {
			d := c.local
			c.local = 0
			c.ev.Notify(d)
			c.phase = crBound
			return
		}
		if c.maxInstrs > 0 && c.cpu.instrs >= c.maxInstrs {
			break
		}
	}
	c.finish(nil)
}

// finish performs the final quantum sync (CPU.Run's trailing
// qk.Sync()) and then completes, carrying err across the sync.
func (c *coreRunner) finish(err error) {
	c.err = err
	if c.local > 0 {
		d := c.local
		c.local = 0
		c.ev.Notify(d)
		c.phase = crFinish
		return
	}
	c.complete()
}

func (c *coreRunner) complete() {
	c.phase = crFinish
	c.onDone(c.err)
}

// stopRunner is the method form of the run-phase stopper thread: poll
// every microsecond until both cores are done, then record the halt
// time and disarm the watchdog so a healthy run drains its event queue
// before the horizon.
type stopRunner struct {
	s      *ecuSlot
	stepFn func()
	ev     *sim.Event
}

func (st *stopRunner) elaborate(k *sim.Kernel) {
	st.ev = k.NewEvent("ecu.run.stopper.timer")
	k.Method("ecu.run.stopper", st.stepFn, st.ev)
}

func (st *stopRunner) step() {
	if !st.s.pDone || !st.s.sDone {
		st.ev.Notify(sim.US(1))
		return
	}
	st.s.haltAt = st.s.k.Now()
	st.s.wd.Stop()
}
