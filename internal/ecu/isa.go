// Package ecu implements the virtual ECU substrate: the AE32 32-bit
// RISC instruction set with CPU core, a two-pass assembler, SECDED
// ECC memory, a windowed watchdog, dual-core lockstep execution with a
// store comparator, and an RTOS-lite periodic task scheduler with
// deadline monitoring.
//
// The paper's Sec. 3.4 demands exactly this substrate: stress tests
// "directly translate to the simulation of a vast amount of
// instructions of the embedded cores", software runs "several
// concurrent tasks that exhibit hard and soft real-time constraints",
// and protection mechanisms (ECC, watchdog, lockstep) are what
// separates a masked error from a safety-critical failure. The CPU is
// a loosely-timed TLM initiator with a quantum keeper, making it the
// workload for the temporal-decoupling experiment E6.
package ecu

import "fmt"

// Opcode enumerates AE32 instructions.
type Opcode uint8

// AE32 opcodes. Encoding: [31:24] opcode, [23:20] rd, [19:16] rs1,
// [15:12] rs2, [11:0] imm12 (sign-extended where noted).
const (
	OpNOP  Opcode = iota // no operation
	OpHALT               // stop the core
	OpADD                // rd = rs1 + rs2
	OpSUB                // rd = rs1 - rs2
	OpAND                // rd = rs1 & rs2
	OpOR                 // rd = rs1 | rs2
	OpXOR                // rd = rs1 ^ rs2
	OpSHL                // rd = rs1 << (rs2 & 31)
	OpSHR                // rd = rs1 >> (rs2 & 31) (logical)
	OpMUL                // rd = rs1 * rs2
	OpADDI               // rd = rs1 + simm12
	OpLUI                // rd = imm12 << 20
	OpLW                 // rd = mem32[rs1 + simm12]
	OpSW                 // mem32[rs1 + simm12] = rs2
	OpBEQ                // if rs1 == rs2: pc += simm12*4
	OpBNE                // if rs1 != rs2: pc += simm12*4
	OpBLT                // if rs1 < rs2 (signed): pc += simm12*4
	OpBGE                // if rs1 >= rs2 (signed): pc += simm12*4
	OpJAL                // rd = pc+4; pc += simm12*4
	OpJALR               // rd = pc+4; pc = rs1 + simm12
	OpRETI               // return from interrupt (pc = saved pc)
	opCount
)

var opNames = [...]string{
	OpNOP: "nop", OpHALT: "halt", OpADD: "add", OpSUB: "sub",
	OpAND: "and", OpOR: "or", OpXOR: "xor", OpSHL: "shl", OpSHR: "shr",
	OpMUL: "mul", OpADDI: "addi", OpLUI: "lui", OpLW: "lw", OpSW: "sw",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpJAL: "jal", OpJALR: "jalr", OpRETI: "reti",
}

// String names the opcode.
func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// Instr is a decoded instruction.
type Instr struct {
	Op  Opcode
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32 // sign-extended imm12
}

// Encode packs the instruction into its 32-bit word.
func Encode(i Instr) uint32 {
	return uint32(i.Op)<<24 |
		uint32(i.Rd&0xf)<<20 |
		uint32(i.Rs1&0xf)<<16 |
		uint32(i.Rs2&0xf)<<12 |
		uint32(i.Imm)&0xfff
}

// Decode unpacks a 32-bit word. Unknown opcodes decode to an error so
// corrupted instruction fetches (a classic SEU effect) surface as
// detectable illegal-instruction faults rather than silent behaviour.
func Decode(w uint32) (Instr, error) {
	op := Opcode(w >> 24)
	if op >= opCount {
		return Instr{}, fmt.Errorf("ecu: illegal opcode %#x in instruction %#08x", uint8(op), w)
	}
	imm := int32(w & 0xfff)
	if imm&0x800 != 0 {
		imm |= ^int32(0xfff) // sign extend
	}
	return Instr{
		Op:  op,
		Rd:  uint8(w >> 20 & 0xf),
		Rs1: uint8(w >> 16 & 0xf),
		Rs2: uint8(w >> 12 & 0xf),
		Imm: imm,
	}, nil
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op {
	case OpNOP, OpHALT, OpRETI:
		return i.Op.String()
	case OpADD, OpSUB, OpAND, OpOR, OpXOR, OpSHL, OpSHR, OpMUL:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	case OpADDI:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpLUI:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Rd, i.Imm)
	case OpLW:
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rd, i.Imm, i.Rs1)
	case OpSW:
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case OpBEQ, OpBNE, OpBLT, OpBGE:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case OpJAL:
		return fmt.Sprintf("%s r%d, %d", i.Op, i.Rd, i.Imm)
	case OpJALR:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	default:
		return fmt.Sprintf("%s ?", i.Op)
	}
}
