package ecu

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stressor"
)

// Golden-run checkpointing for the ECU runner, mirroring the CAPS
// implementation (see caps/session.go for the memory model): the
// golden prefix here includes the dual cores executing the workload
// fault-free, parked mid-run on their quantum-sync notifications at
// the snapshot instant.

// ForkTime implements stressor.Checkpointer.
func (r *Runner) ForkTime(sc fault.Scenario) (sim.Time, bool) {
	if r.ReuseOff || len(sc.Faults) == 0 {
		return 0, false
	}
	fork := stressor.ForkTime(sc)
	if fork == 0 || fork > r.cfg.Horizon {
		return 0, false
	}
	return fork, true
}

// NewSession implements stressor.Checkpointer. The session owns a
// private slot, never the pool's: abandoned sessions are dropped
// without Close, and golden-prefix state must not leak into pooled
// slots.
func (r *Runner) NewSession() stressor.CheckpointSession {
	return &ecuSession{r: r}
}

type ecuSession struct {
	r    *Runner
	slot *ecuSlot
	st   stressor.Stressor

	cp     sim.Checkpoint
	cpOK   bool
	cpFork sim.Time
	mst    any
	dirty  bool
}

// Run implements stressor.CheckpointSession, producing the exact
// outcome Runner.RunScenario yields for the same scenario.
func (s *ecuSession) Run(sc fault.Scenario, fork sim.Time) fault.Outcome {
	ob, err := s.execute(sc, fork)
	if err != nil {
		return fault.Outcome{Scenario: sc, Class: fault.DetectedSafe, Detail: "campaign error: " + err.Error()}
	}
	ob.Activated = len(sc.Faults) > 0
	class := analysis.Classify(s.r.golden, ob)
	return fault.Outcome{Scenario: sc, Class: class, Detail: analysis.Describe(ob)}
}

// Close implements stressor.CheckpointSession.
func (s *ecuSession) Close() {
	if s.slot != nil {
		s.slot.k.Shutdown()
	}
}

func (s *ecuSession) execute(sc fault.Scenario, fork sim.Time) (analysis.Observation, error) {
	if err := s.establish(fork); err != nil {
		return analysis.Observation{}, err
	}
	s.dirty = true
	s.st.Respawn(s.slot.k, s.slot.reg, sc, s.r.cfg.Horizon)
	if err := s.slot.k.RunUntil(s.r.cfg.Horizon); err != nil {
		return analysis.Observation{}, err
	}
	if errs := s.st.InjectionErrors(); len(errs) > 0 {
		return analysis.Observation{}, fmt.Errorf("ecu: scenario %s: %v", sc.ID, errs[0])
	}
	ob, _, _, err := s.r.finishRun(s.slot)
	return ob, err
}

// establish leaves the session's slot at simulated time fork-1 in the
// golden state with a matching checkpoint; see capsSession.establish
// for the three cases.
func (s *ecuSession) establish(fork sim.Time) error {
	if s.slot == nil {
		s.slot = s.r.buildSlot()
		s.slot.beginRun()
	}
	if s.cpOK && fork == s.cpFork {
		if !s.dirty {
			return nil
		}
		return s.restore()
	}
	if s.cpOK && fork > s.cpFork {
		if s.dirty {
			if err := s.restore(); err != nil {
				return err
			}
		}
	} else if s.cpOK || s.dirty {
		s.r.rearmSlot(s.slot)
		s.slot.beginRun()
	}
	if err := s.slot.k.RunUntil(fork - 1); err != nil {
		return err
	}
	if err := s.slot.k.SnapshotInto(&s.cp); err != nil {
		return err
	}
	// Pooled capture: the superseded snapshot's buffers are reused, so
	// steady-state re-snapshotting at a new fork does not allocate.
	s.mst = sim.SnapshotModelState(s.slot, s.mst)
	s.cpOK = true
	s.cpFork = fork
	s.dirty = false
	return nil
}

func (s *ecuSession) restore() error {
	if err := s.slot.k.Restore(&s.cp); err != nil {
		return err
	}
	s.slot.RestoreState(s.mst)
	s.dirty = false
	return nil
}
