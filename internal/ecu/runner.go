package ecu

import (
	"fmt"
	"sync"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stressor"
	"repro/internal/tlm"
)

// runnerProgram is the workload every campaign run executes: a control
// loop folding a lookup table into a running checksum published at
// 0x800, kicking the watchdog (0x8000) each iteration. It exercises
// all three mechanisms — table reads hit the ECC memory, the store
// stream feeds the lockstep comparator, and the kick cadence feeds the
// watchdog.
const runnerProgram = `
	addi r1, r0, 0      ; i
	addi r2, r0, 48     ; n
	addi r3, r0, 0      ; acc
loop:
	shl  r4, r1, r6     ; r6=2 -> i*4 (set by loader)
	lw   r5, 1024(r4)   ; table[i]
	add  r3, r3, r5
	xor  r3, r3, r1
	sw   r3, 0(r8)      ; publish acc at 0x800
	sw   r0, 0(r7)      ; kick watchdog at 0x8000
	addi r1, r1, 1
	blt  r1, r2, loop
	halt
`

const (
	runnerEntry     uint32 = 0x4000
	runnerTableBase uint64 = 0x400
	runnerTableLen         = 48
	runnerAccAddr   uint64 = 0x800
	runnerWdBase    uint64 = 0x8000
)

// RunnerConfig parameterizes the ECU fault-injection runner.
type RunnerConfig struct {
	// Quantum is the temporal-decoupling quantum for both cores.
	Quantum sim.Time
	// MaxInstrs bounds runaway (corrupted) programs per core.
	MaxInstrs uint64
	// Horizon is the simulated time budget per run.
	Horizon sim.Time
	// WatchdogTimeout is the kick window.
	WatchdogTimeout sim.Time
	// Deadline, when non-zero, marks runs whose cores halt correctly
	// but later than this as timing violations.
	Deadline sim.Time
}

// DefaultRunnerConfig returns the standard campaign parameters.
func DefaultRunnerConfig() RunnerConfig {
	return RunnerConfig{
		Quantum:         sim.NS(500),
		MaxInstrs:       100_000,
		Horizon:         sim.US(200),
		WatchdogTimeout: sim.US(50),
	}
}

// ecuSlot is one reusable kernel + dual-core prototype. As in
// caps.Runner, each concurrent run checks out a slot, so the pool
// grows to the campaign's peak concurrency.
type ecuSlot struct {
	k        *sim.Kernel
	wd       *Watchdog
	primary  *CPU
	shadow   *CPU
	pram     *ECCMemory
	sram     *ECCMemory
	wdshadow *tlm.Memory
	ls       *Lockstep
	reg      *fault.Registry

	// run-phase process bodies, created once in buildSlot: the cores
	// and the stopper run as method-process state machines (see
	// corerun.go) so an elaborated run kernel stays snapshottable.
	pRun, sRun *coreRunner
	stop       *stopRunner

	// per-run scratch state
	pDone, sDone bool
	pErr, sErr   error
	haltAt       sim.Time
	tableBuf     []byte
}

// Runner executes SEU campaigns on the virtual ECU: register, program
// counter and memory upsets against the lockstep + ECC + watchdog
// mechanisms, classified golden-vs-faulty like the CAPS campaigns.
// Kernel+prototype slots are reused across runs (Kernel.Reset +
// re-arm); ReuseOff restores rebuild-per-run.
type Runner struct {
	cfg     RunnerConfig
	program []uint32
	golden  analysis.Observation

	goldenRegs  [2][16]uint32
	goldenTable []byte

	// ReuseOff disables slot reuse: every scenario rebuilds the
	// prototype from scratch.
	ReuseOff bool

	mu    sync.Mutex
	slots []*ecuSlot

	// checkpoint-tree shared state, mirroring caps.Runner: the
	// runner-wide node free list, the golden-trajectory cache keyed by
	// normalized hash stride, and the precomputed early-exit outcome.
	nodePool stressor.NodePool
	trajMu   sync.Mutex
	trajs    map[sim.Time]*stressor.GoldenTrajectory
	eeOnce   sync.Once
	eeClass  fault.Classification
	eeDetail string
}

// NewRunner assembles the workload, builds the first slot and performs
// the golden run.
func NewRunner(cfg RunnerConfig) (*Runner, error) {
	if cfg.Quantum == 0 {
		cfg = DefaultRunnerConfig()
	}
	program, err := Assemble(runnerProgram)
	if err != nil {
		return nil, fmt.Errorf("ecu: runner program: %w", err)
	}
	r := &Runner{cfg: cfg, program: program}
	ob, regs, table, err := r.execute(fault.Scenario{ID: "golden"})
	if err != nil {
		return nil, err
	}
	if ob.Detected {
		return nil, fmt.Errorf("ecu: golden run tripped a mechanism: %v", ob.DetectedBy)
	}
	r.golden = ob
	r.goldenRegs = regs
	r.goldenTable = table
	return r, nil
}

// Golden exposes the cached golden observation.
func (r *Runner) Golden() analysis.Observation { return r.golden }

// Close shuts down the thread goroutines parked in the slot pool.
func (r *Runner) Close() {
	r.mu.Lock()
	slots := r.slots
	r.slots = nil
	r.mu.Unlock()
	for _, s := range slots {
		s.k.Shutdown()
	}
}

// Sites lists the prototype's injection sites.
func (r *Runner) Sites() []string {
	return []string{"ecu.primary.mem", "ecu.primary.pc", "ecu.primary.regs", "ecu.shadow.regs"}
}

// buildSlot elaborates a fresh dual-core prototype on its own kernel.
func (r *Runner) buildSlot() *ecuSlot {
	k := sim.NewKernel()
	s := &ecuSlot{k: k, tableBuf: make([]byte, 4*runnerTableLen)}
	s.wd = NewWatchdog(k, "ecu.wd", r.cfg.WatchdogTimeout)

	s.primary = NewCPU("ecu.primary")
	s.pram = NewECCMemory("ecu.primary.eccram", 0, 64*1024)
	pbus := tlm.NewRouter("ecu.primary.bus")
	pbus.MustMap("ram", 0, runnerWdBase, s.pram)
	pbus.MustMap("wd", runnerWdBase, 0x100, s.wd)
	s.primary.Bus.Bind(pbus)

	s.shadow = NewCPU("ecu.shadow")
	s.sram = NewECCMemory("ecu.shadow.eccram", 0, 64*1024)
	s.wdshadow = tlm.NewMemory("ecu.shadow.wdshadow", runnerWdBase, 0x100)
	sbus := tlm.NewRouter("ecu.shadow.bus")
	sbus.MustMap("ram", 0, runnerWdBase, s.sram)
	sbus.MustMap("wdshadow", runnerWdBase, 0x100, s.wdshadow)
	s.shadow.Bus.Bind(sbus)

	s.ls = NewLockstep(s.primary, s.shadow)

	s.pRun = &coreRunner{cpu: s.primary, quantum: r.cfg.Quantum, maxInstrs: r.cfg.MaxInstrs,
		name: "ecu.run.primary", onDone: func(err error) { s.pErr = err; s.pDone = true }}
	s.pRun.stepFn = s.pRun.step
	s.sRun = &coreRunner{cpu: s.shadow, quantum: r.cfg.Quantum, maxInstrs: r.cfg.MaxInstrs,
		name: "ecu.run.shadow", onDone: func(err error) { s.sErr = err; s.sDone = true }}
	s.sRun.stepFn = s.sRun.step
	s.stop = &stopRunner{s: s}
	s.stop.stepFn = s.stop.step

	reg := fault.NewRegistry()
	reg.MustRegister(&fault.FuncInjector{
		SiteName: "ecu.primary.regs",
		Models:   []fault.Model{fault.BitFlip},
		InjectFn: func(d fault.Descriptor) error {
			s.primary.FlipRegBit(int(d.Address), d.Bit)
			return nil
		},
	})
	reg.MustRegister(&fault.FuncInjector{
		SiteName: "ecu.shadow.regs",
		Models:   []fault.Model{fault.BitFlip},
		InjectFn: func(d fault.Descriptor) error {
			s.shadow.FlipRegBit(int(d.Address), d.Bit)
			return nil
		},
	})
	reg.MustRegister(&fault.FuncInjector{
		SiteName: "ecu.primary.pc",
		Models:   []fault.Model{fault.BitFlip},
		InjectFn: func(d fault.Descriptor) error {
			s.primary.FlipPCBit(d.Bit)
			return nil
		},
	})
	reg.MustRegister(&fault.FuncInjector{
		SiteName: "ecu.primary.mem",
		Models:   []fault.Model{fault.BitFlip},
		InjectFn: func(d fault.Descriptor) error {
			return s.pram.FlipStoredBit(d.Address, d.Bit)
		},
	})
	s.reg = reg

	r.seedSlot(s)
	return s
}

// seedSlot (re-)loads program, table and core state for one run.
func (r *Runner) seedSlot(s *ecuSlot) {
	for _, ram := range []*ECCMemory{s.pram, s.sram} {
		LoadProgram(ram, uint64(runnerEntry), r.program)
		for i := 0; i < runnerTableLen; i++ {
			v := uint32(i*7 + 3)
			p := tlm.NewWrite(runnerTableBase+uint64(4*i),
				[]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
			ram.TransportDbg(p)
		}
	}
	for _, c := range []*CPU{s.primary, s.shadow} {
		c.Reset(runnerEntry)
		c.SetReg(6, 2)                    // shift amount for i*4
		c.SetReg(7, uint32(runnerWdBase)) // watchdog kick register
		c.SetReg(8, uint32(runnerAccAddr))
	}
	s.pDone, s.sDone = false, false
	s.pErr, s.sErr = nil, nil
	s.haltAt = 0
}

// rearmSlot returns a pooled slot to its pristine post-build state.
func (r *Runner) rearmSlot(s *ecuSlot) {
	s.k.Reset()
	s.wd.Rearm(s.k) // same elaboration position NewWatchdog held
	s.pram.Clear()
	s.sram.Clear()
	s.wdshadow.Wipe()
	s.ls.Reset()
	r.seedSlot(s)
}

func (r *Runner) acquireSlot() *ecuSlot {
	r.mu.Lock()
	var s *ecuSlot
	if n := len(r.slots); n > 0 {
		s = r.slots[n-1]
		r.slots[n-1] = nil
		r.slots = r.slots[:n-1]
	}
	r.mu.Unlock()
	if s == nil {
		return r.buildSlot()
	}
	r.rearmSlot(s)
	return s
}

func (r *Runner) releaseSlot(s *ecuSlot) {
	r.mu.Lock()
	r.slots = append(r.slots, s)
	r.mu.Unlock()
}

// Universe enumerates a representative SEU space at the given
// activation time: register bits on both cores, program-counter bits,
// and stored-codeword bits (data and check) in the primary's table,
// result cell and program text.
func (r *Runner) Universe(start sim.Time) []fault.Descriptor {
	var out []fault.Descriptor
	add := func(target string, addr uint64, bit uint) {
		out = append(out, fault.Descriptor{
			Name:    fmt.Sprintf("%s/a%#x.b%d@%s", target, addr, bit, start),
			Model:   fault.BitFlip,
			Class:   fault.Permanent,
			Domain:  fault.DigitalHW,
			Target:  target,
			Address: addr,
			Bit:     bit,
			Start:   start,
		})
	}
	for _, reg := range []uint64{1, 3, 5, 9} {
		for _, bit := range []uint{0, 7, 31} {
			add("ecu.primary.regs", reg, bit)
			add("ecu.shadow.regs", reg, bit)
		}
	}
	for _, bit := range []uint{2, 3} {
		add("ecu.primary.pc", 0, bit)
	}
	for _, addr := range []uint64{
		runnerTableBase, runnerTableBase + 0x40, runnerTableBase + 4*(runnerTableLen-1),
		runnerAccAddr, uint64(runnerEntry) + 8,
	} {
		for _, bit := range []uint{0, 5, 33} {
			add("ecu.primary.mem", addr, bit)
		}
	}
	return out
}

// execute runs one scenario and returns the observation plus the final
// register files and primary table image (for latent-state analysis).
func (r *Runner) execute(sc fault.Scenario) (analysis.Observation, [2][16]uint32, []byte, error) {
	var s *ecuSlot
	if r.ReuseOff {
		s = r.buildSlot()
		defer s.k.Shutdown()
	} else {
		s = r.acquireSlot()
		defer r.releaseSlot(s)
	}
	return r.runOn(s, sc)
}

// beginRun elaborates the run-phase processes (cores, stopper) on the
// slot's kernel, in the fixed order the process-id-dependent schedule
// relies on, and arms the watchdog. The stressor — when the scenario
// has faults — elaborates after it, both here and on the
// checkpoint-restore path.
func (s *ecuSlot) beginRun() {
	s.wd.Start()
	s.pRun.elaborate(s.k)
	s.sRun.elaborate(s.k)
	s.stop.elaborate(s.k)
}

func (r *Runner) runOn(s *ecuSlot, sc fault.Scenario) (analysis.Observation, [2][16]uint32, []byte, error) {
	k := s.k
	s.beginRun()
	var st *stressor.Stressor
	if len(sc.Faults) > 0 {
		st = stressor.SpawnThread(k, s.reg, sc, r.cfg.Horizon)
	}
	if err := k.Run(r.cfg.Horizon); err != nil {
		return analysis.Observation{}, [2][16]uint32{}, nil, err
	}
	if st != nil {
		if errs := st.InjectionErrors(); len(errs) > 0 {
			return analysis.Observation{}, [2][16]uint32{}, nil, fmt.Errorf("ecu: scenario %s: %v", sc.ID, errs[0])
		}
	}
	return r.finishRun(s)
}

// finishRun reads mechanisms and observable outputs off a slot whose
// run just completed — shared by the rebuild/reuse path (runOn) and
// the checkpoint-restore path so both produce byte-identical results.
func (r *Runner) finishRun(s *ecuSlot) (analysis.Observation, [2][16]uint32, []byte, error) {
	s.ls.FinalCheck()
	// A core trap (bus error, illegal opcode) escalates to the safety
	// path, as real lockstep MCUs do.
	for _, e := range []error{s.pErr, s.sErr} {
		if e != nil {
			s.ls.diverged = true
			if s.ls.detail == "" {
				s.ls.detail = "core trap: " + e.Error()
			}
		}
	}

	ob := analysis.Observation{Outputs: map[string]string{
		"acc":    fmt.Sprintf("%#x", r.readWord(s.pram, runnerAccAddr)),
		"sacc":   fmt.Sprintf("%#x", r.readWord(s.sram, runnerAccAddr)),
		"halted": fmt.Sprintf("%v/%v", s.primary.Halted(), s.shadow.Halted()),
	}}
	if s.ls.Diverged() {
		ob.Detected = true
		ob.DetectedBy = append(ob.DetectedBy, "lockstep")
	}
	if s.wd.Timeouts() > 0 {
		ob.Detected = true
		ob.DetectedBy = append(ob.DetectedBy, "watchdog")
	}
	pc, pu := s.pram.Stats()
	sc2, su := s.sram.Stats()
	if pc+pu+sc2+su > 0 {
		ob.Detected = true
		ob.DetectedBy = append(ob.DetectedBy, "ecc")
	}
	if r.cfg.Deadline > 0 && s.primary.Halted() && s.shadow.Halted() && s.haltAt > r.cfg.Deadline {
		ob.DeadlineMissed = true
	}

	var regs [2][16]uint32
	for i := 0; i < 16; i++ {
		regs[0][i] = s.primary.Reg(i)
		regs[1][i] = s.shadow.Reg(i)
	}
	p := tlm.NewRead(runnerTableBase, len(s.tableBuf))
	p.Data = s.tableBuf
	s.pram.TransportDbg(p)
	table := append([]byte(nil), s.tableBuf...)

	if r.goldenTable != nil {
		ob.LatentState = regs != r.goldenRegs || !bytesEqual(table, r.goldenTable)
	}
	return ob, regs, table, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// readWord fetches one word through the debug port.
func (r *Runner) readWord(m *ECCMemory, addr uint64) uint32 {
	p := tlm.NewRead(addr, 4)
	m.TransportDbg(p)
	return uint32(p.Data[0]) | uint32(p.Data[1])<<8 | uint32(p.Data[2])<<16 | uint32(p.Data[3])<<24
}

// RunScenario executes and classifies one fault scenario.
func (r *Runner) RunScenario(sc fault.Scenario) fault.Outcome {
	ob, _, _, err := r.execute(sc)
	if err != nil {
		return fault.Outcome{Scenario: sc, Class: fault.DetectedSafe, Detail: "campaign error: " + err.Error()}
	}
	ob.Activated = len(sc.Faults) > 0
	class := analysis.Classify(r.golden, ob)
	return fault.Outcome{Scenario: sc, Class: class, Detail: analysis.Describe(ob)}
}

// RunFunc adapts the runner to the campaign engine.
func (r *Runner) RunFunc() stressor.RunFunc {
	return func(sc fault.Scenario) fault.Outcome { return r.RunScenario(sc) }
}

// RunScenarioSigned is RunScenario plus the outcome's equivalence
// signature: the slot's final-state digest (ecuSlot.HashState — the
// digest convergence early-exit trusts) folded with the
// classification. A run that errors out carries no signature (the
// adaptive engine substitutes its class+detail fallback).
func (r *Runner) RunScenarioSigned(sc fault.Scenario) fault.Outcome {
	var s *ecuSlot
	if r.ReuseOff {
		s = r.buildSlot()
		defer s.k.Shutdown()
	} else {
		s = r.acquireSlot()
		defer r.releaseSlot(s)
	}
	ob, _, _, err := r.runOn(s, sc)
	if err != nil {
		return fault.Outcome{Scenario: sc, Class: fault.DetectedSafe, Detail: "campaign error: " + err.Error()}
	}
	// Digest while the slot is still checked out — it re-arms for
	// another scenario the moment it returns to the pool.
	sig := sim.StateSignature(s)
	ob.Activated = len(sc.Faults) > 0
	class := analysis.Classify(r.golden, ob)
	return fault.Outcome{
		Scenario: sc, Class: class, Detail: analysis.Describe(ob),
		Signature: sim.MixSignature(sig, uint64(class)),
	}
}

// SignedRunFunc adapts the signed path to the adaptive campaign
// engine. Outcomes are identical to RunFunc's except for Signature.
func (r *Runner) SignedRunFunc() stressor.RunFunc {
	return func(sc fault.Scenario) fault.Outcome { return r.RunScenarioSigned(sc) }
}

// NewCampaign builds a campaign over this runner for one shard of the
// scenario universe (pass the zero Shard for an unsharded campaign).
// The caller layers on workers, journaling, StopOnFirst and
// observability.
func (r *Runner) NewCampaign(name string, shard stressor.Shard) *stressor.Campaign {
	return &stressor.Campaign{Name: name, Run: r.RunFunc(), Shard: shard, Checkpointer: r}
}
