package ecu

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates AE32 assembly into machine words (two passes:
// label collection, then encoding). Syntax, one instruction or label
// per line, ';' or '#' starts a comment:
//
//	loop:               ; label
//	  addi r1, r0, 10   ; immediate arithmetic
//	  lw   r2, 4(r3)    ; load with displacement
//	  sw   r2, 0(r4)
//	  beq  r1, r2, done ; branches take labels or numeric word offsets
//	  jal  r14, loop
//	done:
//	  halt
//	.word 0xdeadbeef    ; literal data word
//
// Register names are r0..r15. Branch/JAL label targets are converted
// to word-relative offsets from the *next* instruction.
func Assemble(src string) ([]uint32, error) {
	type line struct {
		no    int
		text  string
		label string
	}
	var lines []line
	labels := map[string]int{} // label -> word index
	word := 0
	for no, raw := range strings.Split(src, "\n") {
		text := raw
		if i := strings.IndexAny(text, ";#"); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		for {
			if i := strings.Index(text, ":"); i >= 0 {
				label := strings.TrimSpace(text[:i])
				if label == "" || strings.ContainsAny(label, " \t") {
					return nil, fmt.Errorf("ecu: line %d: bad label %q", no+1, label)
				}
				if _, dup := labels[label]; dup {
					return nil, fmt.Errorf("ecu: line %d: duplicate label %q", no+1, label)
				}
				labels[label] = word
				text = strings.TrimSpace(text[i+1:])
				continue
			}
			break
		}
		if text == "" {
			continue
		}
		lines = append(lines, line{no: no + 1, text: text})
		word++
	}

	parseReg := func(s string) (uint8, error) {
		s = strings.TrimSpace(s)
		if !strings.HasPrefix(s, "r") && !strings.HasPrefix(s, "R") {
			return 0, fmt.Errorf("bad register %q", s)
		}
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n > 15 {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return uint8(n), nil
	}
	parseImm := func(s string) (int32, error) {
		s = strings.TrimSpace(s)
		v, err := strconv.ParseInt(s, 0, 32)
		if err != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		if v < -2048 || v > 2047 {
			return 0, fmt.Errorf("immediate %d out of 12-bit range", v)
		}
		return int32(v), nil
	}
	// branch target: label or numeric offset.
	parseTarget := func(s string, at int) (int32, error) {
		s = strings.TrimSpace(s)
		if idx, ok := labels[s]; ok {
			off := idx - (at + 1)
			if off < -2048 || off > 2047 {
				return 0, fmt.Errorf("branch to %q out of range (%d words)", s, off)
			}
			return int32(off), nil
		}
		return parseImm(s)
	}
	// memory operand: imm(rN)
	parseMem := func(s string) (int32, uint8, error) {
		s = strings.TrimSpace(s)
		open := strings.Index(s, "(")
		if open < 0 || !strings.HasSuffix(s, ")") {
			return 0, 0, fmt.Errorf("bad memory operand %q", s)
		}
		immStr := strings.TrimSpace(s[:open])
		if immStr == "" {
			immStr = "0"
		}
		imm, err := parseImm(immStr)
		if err != nil {
			return 0, 0, err
		}
		reg, err := parseReg(s[open+1 : len(s)-1])
		if err != nil {
			return 0, 0, err
		}
		return imm, reg, nil
	}

	var out []uint32
	for at, ln := range lines {
		fields := strings.SplitN(ln.text, " ", 2)
		mnem := strings.ToLower(strings.TrimSpace(fields[0]))
		rest := ""
		if len(fields) > 1 {
			rest = fields[1]
		}
		ops := strings.Split(rest, ",")
		for i := range ops {
			ops[i] = strings.TrimSpace(ops[i])
		}
		fail := func(err error) ([]uint32, error) {
			return nil, fmt.Errorf("ecu: line %d (%q): %w", ln.no, ln.text, err)
		}
		need := func(n int) error {
			if rest == "" && n > 0 {
				return fmt.Errorf("expected %d operands", n)
			}
			if n > 0 && len(ops) != n {
				return fmt.Errorf("expected %d operands, got %d", n, len(ops))
			}
			return nil
		}

		switch mnem {
		case ".word":
			v, err := strconv.ParseUint(strings.TrimSpace(rest), 0, 32)
			if err != nil {
				return fail(fmt.Errorf("bad .word %q", rest))
			}
			out = append(out, uint32(v))
		case "nop":
			out = append(out, Encode(Instr{Op: OpNOP}))
		case "halt":
			out = append(out, Encode(Instr{Op: OpHALT}))
		case "reti":
			out = append(out, Encode(Instr{Op: OpRETI}))
		case "add", "sub", "and", "or", "xor", "shl", "shr", "mul":
			if err := need(3); err != nil {
				return fail(err)
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return fail(err)
			}
			rs1, err := parseReg(ops[1])
			if err != nil {
				return fail(err)
			}
			rs2, err := parseReg(ops[2])
			if err != nil {
				return fail(err)
			}
			opm := map[string]Opcode{"add": OpADD, "sub": OpSUB, "and": OpAND, "or": OpOR,
				"xor": OpXOR, "shl": OpSHL, "shr": OpSHR, "mul": OpMUL}
			out = append(out, Encode(Instr{Op: opm[mnem], Rd: rd, Rs1: rs1, Rs2: rs2}))
		case "addi":
			if err := need(3); err != nil {
				return fail(err)
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return fail(err)
			}
			rs1, err := parseReg(ops[1])
			if err != nil {
				return fail(err)
			}
			imm, err := parseImm(ops[2])
			if err != nil {
				return fail(err)
			}
			out = append(out, Encode(Instr{Op: OpADDI, Rd: rd, Rs1: rs1, Imm: imm}))
		case "lui":
			if err := need(2); err != nil {
				return fail(err)
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return fail(err)
			}
			imm, err := parseImm(ops[1])
			if err != nil {
				return fail(err)
			}
			out = append(out, Encode(Instr{Op: OpLUI, Rd: rd, Imm: imm}))
		case "lw":
			if err := need(2); err != nil {
				return fail(err)
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return fail(err)
			}
			imm, rs1, err := parseMem(ops[1])
			if err != nil {
				return fail(err)
			}
			out = append(out, Encode(Instr{Op: OpLW, Rd: rd, Rs1: rs1, Imm: imm}))
		case "sw":
			if err := need(2); err != nil {
				return fail(err)
			}
			rs2, err := parseReg(ops[0])
			if err != nil {
				return fail(err)
			}
			imm, rs1, err := parseMem(ops[1])
			if err != nil {
				return fail(err)
			}
			out = append(out, Encode(Instr{Op: OpSW, Rs1: rs1, Rs2: rs2, Imm: imm}))
		case "beq", "bne", "blt", "bge":
			if err := need(3); err != nil {
				return fail(err)
			}
			rs1, err := parseReg(ops[0])
			if err != nil {
				return fail(err)
			}
			rs2, err := parseReg(ops[1])
			if err != nil {
				return fail(err)
			}
			off, err := parseTarget(ops[2], at)
			if err != nil {
				return fail(err)
			}
			opm := map[string]Opcode{"beq": OpBEQ, "bne": OpBNE, "blt": OpBLT, "bge": OpBGE}
			out = append(out, Encode(Instr{Op: opm[mnem], Rs1: rs1, Rs2: rs2, Imm: off}))
		case "jal":
			if err := need(2); err != nil {
				return fail(err)
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return fail(err)
			}
			off, err := parseTarget(ops[1], at)
			if err != nil {
				return fail(err)
			}
			out = append(out, Encode(Instr{Op: OpJAL, Rd: rd, Imm: off}))
		case "jalr":
			if err := need(3); err != nil {
				return fail(err)
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return fail(err)
			}
			rs1, err := parseReg(ops[1])
			if err != nil {
				return fail(err)
			}
			imm, err := parseImm(ops[2])
			if err != nil {
				return fail(err)
			}
			out = append(out, Encode(Instr{Op: OpJALR, Rd: rd, Rs1: rs1, Imm: imm}))
		default:
			return fail(fmt.Errorf("unknown mnemonic %q", mnem))
		}
	}
	return out, nil
}

// MustAssemble is Assemble that panics (test fixtures).
func MustAssemble(src string) []uint32 {
	w, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return w
}
