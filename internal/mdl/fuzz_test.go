package mdl

import (
	"testing"
)

// FuzzInterp drives arbitrary source through the whole MDL stack:
// lexer, parser, printer and interpreter. Invariants:
//
//   - Parse never panics or loops on arbitrary input.
//   - A program that parses prints back to source that reparses, and
//     the reprint is a fixed point (Print∘Parse∘Print = Print).
//   - Interpreting any parsed function with zeroed arguments never
//     panics and never runs past the step budget — runaway loops must
//     surface as ErrStepBudget, not hangs.
func FuzzInterp(f *testing.F) {
	f.Add(airbagSrc)
	f.Add("func f(a) { return a <= 10 && !a }")
	f.Add("func loop(n) { let i = 0\n while i < n { i = i + 1 }\n return i }")
	f.Add("func r(n) { if n <= 0 { return 0 }\n return r(n - 1) + 1 }")
	f.Add("func d(a, b) { return a / b + a % b }")
	f.Add("func neg(x) { return -x * (0 - 1) }")
	f.Add("func b() { return true || false }")
	f.Add("func forever() { while true { let x = 1 } }")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		p, err := Parse(src)
		if err != nil {
			return
		}
		printed := p.Print()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\n%s", err, printed)
		}
		if got := p2.Print(); got != printed {
			t.Fatalf("print is not a fixed point\nfirst:  %s\nsecond: %s", printed, got)
		}
		in := NewInterp(p)
		in.MaxSteps = 2000
		for _, name := range p.Order {
			args := make([]int64, len(p.Funcs[name].Params))
			// Errors (undefined vars, division by zero, step budget)
			// are legitimate outcomes; panics and hangs are not.
			in.Call(name, args...)
		}
	})
}
