package mdl

import "fmt"

// Parse turns MDL source into a Program with dense node IDs.
//
// Grammar (EBNF):
//
//	program   = { funcdef }
//	funcdef   = "func" ident "(" [ ident { "," ident } ] ")" block
//	block     = "{" { stmt } "}"
//	stmt      = "let" ident "=" expr
//	          | ident "=" expr
//	          | "if" expr block [ "else" block ]
//	          | "while" expr block
//	          | "return" expr
//	expr      = orExpr
//	orExpr    = andExpr { "||" andExpr }
//	andExpr   = cmpExpr { "&&" cmpExpr }
//	cmpExpr   = addExpr [ ("<"|"<="|">"|">="|"=="|"!=") addExpr ]
//	addExpr   = mulExpr { ("+"|"-") mulExpr }
//	mulExpr   = unary { ("*"|"/"|"%") unary }
//	unary     = [ "!"|"-" ] primary
//	primary   = int | "true" | "false" | ident [ "(" args ")" ] | "(" expr ")"
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prog: &Program{Funcs: map[string]*Func{}, Source: src}}
	for p.peek().Kind != TokEOF {
		if err := p.funcdef(); err != nil {
			return nil, err
		}
	}
	p.prog.NumNodes = int(p.nextID)
	if len(p.prog.Funcs) == 0 {
		return nil, fmt.Errorf("mdl: empty program")
	}
	return p.prog, nil
}

// MustParse is Parse that panics (test fixtures).
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks   []Token
	pos    int
	prog   *Program
	nextID NodeID
}

func (p *parser) id() NodeID {
	id := p.nextID
	p.nextID++
	return id
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k TokKind) (Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, fmt.Errorf("mdl: line %d: expected %s, got %s %q", t.Line, k, t.Kind, t.Text)
	}
	return p.next(), nil
}

func (p *parser) funcdef() error {
	if _, err := p.expect(TokFunc); err != nil {
		return err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	if _, dup := p.prog.Funcs[name.Text]; dup {
		return fmt.Errorf("mdl: line %d: duplicate function %q", name.Line, name.Text)
	}
	if _, err := p.expect(TokLParen); err != nil {
		return err
	}
	var params []string
	if p.peek().Kind != TokRParen {
		for {
			id, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			params = append(params, id.Text)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return err
	}
	body, err := p.block()
	if err != nil {
		return err
	}
	f := &Func{Name: name.Text, Params: params, Body: body}
	p.prog.Funcs[f.Name] = f
	p.prog.Order = append(p.prog.Order, f.Name)
	return nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.peek().Kind != TokRBrace {
		if p.peek().Kind == TokEOF {
			return nil, fmt.Errorf("mdl: unexpected EOF in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // consume }
	return stmts, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	switch t.Kind {
	case TokLet:
		p.next()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Let{NID: p.id(), Name: name.Text, E: e}, nil
	case TokIdent:
		p.next()
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Assign{NID: p.id(), Name: t.Text, E: e}, nil
	case TokIf:
		p.next()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.peek().Kind == TokElse {
			p.next()
			els, err = p.block()
			if err != nil {
				return nil, err
			}
		}
		return &If{NID: p.id(), Cond: cond, Then: then, Else: els}, nil
	case TokWhile:
		p.next()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &While{NID: p.id(), Cond: cond, Body: body}, nil
	case TokReturn:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Return{NID: p.id(), E: e}, nil
	default:
		return nil, fmt.Errorf("mdl: line %d: unexpected %s at statement start", t.Line, t.Kind)
	}
}

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokOrOr {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{NID: p.id(), Op: TokOrOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokAndAnd {
		p.next()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{NID: p.id(), Op: TokAndAnd, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[TokKind]bool{
	TokLT: true, TokLE: true, TokGT: true, TokGE: true, TokEQ: true, TokNE: true,
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if cmpOps[p.peek().Kind] {
		op := p.next().Kind
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{NID: p.id(), Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokPlus || p.peek().Kind == TokMinus {
		op := p.next().Kind
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{NID: p.id(), Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokStar || p.peek().Kind == TokSlash || p.peek().Kind == TokPercent {
		op := p.next().Kind
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &Binary{NID: p.id(), Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	if t := p.peek(); t.Kind == TokNot || t.Kind == TokMinus {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{NID: p.id(), Op: t.Kind, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case TokInt:
		return &IntLit{NID: p.id(), Val: t.Val}, nil
	case TokTrue:
		return &BoolLit{NID: p.id(), Val: true}, nil
	case TokFalse:
		return &BoolLit{NID: p.id(), Val: false}, nil
	case TokIdent:
		if p.peek().Kind == TokLParen {
			p.next()
			var args []Expr
			if p.peek().Kind != TokRParen {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().Kind != TokComma {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &Call{NID: p.id(), Name: t.Text, Args: args}, nil
		}
		return &VarRef{NID: p.id(), Name: t.Text}, nil
	case TokLParen:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("mdl: line %d: unexpected %s %q in expression", t.Line, t.Kind, t.Text)
	}
}
