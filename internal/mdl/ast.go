package mdl

import (
	"fmt"
	"strings"
)

// NodeID addresses one AST node for mutation schemata: the parser
// assigns dense IDs in visitation order, so a (program, NodeID) pair
// uniquely names a mutation site.
type NodeID int32

// Expr is an expression node.
type Expr interface {
	exprNode()
	// ID reports the node's mutation address.
	ID() NodeID
	print(b *strings.Builder)
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	ID() NodeID
	print(b *strings.Builder, indent int)
}

// IntLit is an integer literal.
type IntLit struct {
	NID NodeID
	Val int64
}

// BoolLit is a boolean literal.
type BoolLit struct {
	NID NodeID
	Val bool
}

// VarRef reads a variable.
type VarRef struct {
	NID  NodeID
	Name string
}

// Binary applies an infix operator.
type Binary struct {
	NID  NodeID
	Op   TokKind
	L, R Expr
}

// Unary applies '!' or unary '-'.
type Unary struct {
	NID NodeID
	Op  TokKind
	X   Expr
}

// Call invokes another function in the same program.
type Call struct {
	NID  NodeID
	Name string
	Args []Expr
}

func (*IntLit) exprNode()  {}
func (*BoolLit) exprNode() {}
func (*VarRef) exprNode()  {}
func (*Binary) exprNode()  {}
func (*Unary) exprNode()   {}
func (*Call) exprNode()    {}

// ID implements Expr.
func (e *IntLit) ID() NodeID { return e.NID }

// ID implements Expr.
func (e *BoolLit) ID() NodeID { return e.NID }

// ID implements Expr.
func (e *VarRef) ID() NodeID { return e.NID }

// ID implements Expr.
func (e *Binary) ID() NodeID { return e.NID }

// ID implements Expr.
func (e *Unary) ID() NodeID { return e.NID }

// ID implements Expr.
func (e *Call) ID() NodeID { return e.NID }

// Let declares and initializes a variable.
type Let struct {
	NID  NodeID
	Name string
	E    Expr
}

// Assign updates a variable.
type Assign struct {
	NID  NodeID
	Name string
	E    Expr
}

// If branches on a condition.
type If struct {
	NID  NodeID
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// While loops on a condition.
type While struct {
	NID  NodeID
	Cond Expr
	Body []Stmt
}

// Return exits the function with a value.
type Return struct {
	NID NodeID
	E   Expr
}

func (*Let) stmtNode()    {}
func (*Assign) stmtNode() {}
func (*If) stmtNode()     {}
func (*While) stmtNode()  {}
func (*Return) stmtNode() {}

// ID implements Stmt.
func (s *Let) ID() NodeID { return s.NID }

// ID implements Stmt.
func (s *Assign) ID() NodeID { return s.NID }

// ID implements Stmt.
func (s *If) ID() NodeID { return s.NID }

// ID implements Stmt.
func (s *While) ID() NodeID { return s.NID }

// ID implements Stmt.
func (s *Return) ID() NodeID { return s.NID }

// Func is one function definition.
type Func struct {
	Name   string
	Params []string
	Body   []Stmt
}

// Program is a parsed MDL source file.
type Program struct {
	Funcs map[string]*Func
	// Order preserves declaration order for printing.
	Order []string
	// NumNodes is the number of AST nodes (IDs are 0..NumNodes-1).
	NumNodes int
	// Source is the original text (for error messages and reports).
	Source string
}

// ---- Printer (used to materialize textual mutants) ----

func (e *IntLit) print(b *strings.Builder)  { fmt.Fprintf(b, "%d", e.Val) }
func (e *BoolLit) print(b *strings.Builder) { fmt.Fprintf(b, "%v", e.Val) }
func (e *VarRef) print(b *strings.Builder)  { b.WriteString(e.Name) }

func (e *Binary) print(b *strings.Builder) {
	b.WriteByte('(')
	e.L.print(b)
	fmt.Fprintf(b, " %s ", e.Op)
	e.R.print(b)
	b.WriteByte(')')
}

func (e *Unary) print(b *strings.Builder) {
	b.WriteString(e.Op.String())
	b.WriteByte('(')
	e.X.print(b)
	b.WriteByte(')')
}

func (e *Call) print(b *strings.Builder) {
	b.WriteString(e.Name)
	b.WriteByte('(')
	for i, a := range e.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		a.print(b)
	}
	b.WriteByte(')')
}

func pad(b *strings.Builder, n int) { b.WriteString(strings.Repeat("  ", n)) }

func (s *Let) print(b *strings.Builder, indent int) {
	pad(b, indent)
	fmt.Fprintf(b, "let %s = ", s.Name)
	s.E.print(b)
	b.WriteByte('\n')
}

func (s *Assign) print(b *strings.Builder, indent int) {
	pad(b, indent)
	fmt.Fprintf(b, "%s = ", s.Name)
	s.E.print(b)
	b.WriteByte('\n')
}

func printBlock(b *strings.Builder, stmts []Stmt, indent int) {
	for _, s := range stmts {
		s.print(b, indent)
	}
}

func (s *If) print(b *strings.Builder, indent int) {
	pad(b, indent)
	b.WriteString("if ")
	s.Cond.print(b)
	b.WriteString(" {\n")
	printBlock(b, s.Then, indent+1)
	pad(b, indent)
	b.WriteString("}")
	if len(s.Else) > 0 {
		b.WriteString(" else {\n")
		printBlock(b, s.Else, indent+1)
		pad(b, indent)
		b.WriteString("}")
	}
	b.WriteByte('\n')
}

func (s *While) print(b *strings.Builder, indent int) {
	pad(b, indent)
	b.WriteString("while ")
	s.Cond.print(b)
	b.WriteString(" {\n")
	printBlock(b, s.Body, indent+1)
	pad(b, indent)
	b.WriteString("}\n")
}

func (s *Return) print(b *strings.Builder, indent int) {
	pad(b, indent)
	b.WriteString("return ")
	s.E.print(b)
	b.WriteByte('\n')
}

// Print renders the program back to parseable MDL source.
func (p *Program) Print() string {
	var b strings.Builder
	for _, name := range p.Order {
		f := p.Funcs[name]
		fmt.Fprintf(&b, "func %s(%s) {\n", f.Name, strings.Join(f.Params, ", "))
		printBlock(&b, f.Body, 1)
		b.WriteString("}\n")
	}
	return b.String()
}
