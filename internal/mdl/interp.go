package mdl

import (
	"errors"
	"fmt"
)

// MutOp enumerates the mutation kinds the interpreter can apply via
// schemata (the mutation package decides where to apply them).
type MutOp uint8

const (
	// MutReplaceBinOp swaps a binary operator (AOR/ROR/LCR classes).
	MutReplaceBinOp MutOp = iota
	// MutReplaceConst replaces an integer literal's value (CRP).
	MutReplaceConst
	// MutNegateCond inverts an if/while condition (NC).
	MutNegateCond
	// MutDeleteStmt removes a let/assign statement (SDL).
	MutDeleteStmt
)

// String names the mutation kind.
func (m MutOp) String() string {
	switch m {
	case MutReplaceBinOp:
		return "replace-binop"
	case MutReplaceConst:
		return "replace-const"
	case MutNegateCond:
		return "negate-cond"
	case MutDeleteStmt:
		return "delete-stmt"
	default:
		return fmt.Sprintf("MutOp(%d)", uint8(m))
	}
}

// SchemataMut selects one mutant inside an unmodified program: the
// interpreter consults it at the addressed node and applies the
// mutated semantics. This is the "mutation schema" technique
// (Sec. 2.4 [21]) — one compiled artifact, any mutant, no re-parse.
type SchemataMut struct {
	Node   NodeID
	Op     MutOp
	NewTok TokKind // MutReplaceBinOp
	NewVal int64   // MutReplaceConst
}

// ErrStepBudget reports a (probably mutant-induced) runaway loop.
var ErrStepBudget = errors.New("mdl: step budget exceeded")

// DefaultMaxSteps bounds interpretation so mutants that break loop
// exits terminate (they count as killed-by-timeout).
const DefaultMaxSteps = 1_000_000

// Interp executes a program. It tracks statement coverage and honours
// an optional schemata mutation.
type Interp struct {
	prog     *Program
	mut      *SchemataMut
	covered  map[NodeID]bool
	steps    int
	MaxSteps int
}

// NewInterp creates an interpreter for the program.
func NewInterp(p *Program) *Interp {
	return &Interp{prog: p, covered: make(map[NodeID]bool), MaxSteps: DefaultMaxSteps}
}

// SetMutation activates a schemata mutant (nil deactivates).
func (in *Interp) SetMutation(m *SchemataMut) { in.mut = m }

// ResetCoverage clears the statement coverage map.
func (in *Interp) ResetCoverage() { clear(in.covered) }

// Covered reports the covered statement IDs.
func (in *Interp) Covered() map[NodeID]bool { return in.covered }

// CoverageFraction reports covered statements over all statements.
func (in *Interp) CoverageFraction() float64 {
	all := CollectStmtIDs(in.prog)
	if len(all) == 0 {
		return 1
	}
	n := 0
	for _, id := range all {
		if in.covered[id] {
			n++
		}
	}
	return float64(n) / float64(len(all))
}

// env is a function-call scope.
type env struct {
	vars map[string]int64
}

// errReturn carries a return value up the statement walk.
type errReturn struct {
	val int64
}

func (errReturn) Error() string { return "return" }

// Call executes a named function with integer arguments (booleans are
// 0/1) and returns its result. A function that falls off the end
// returns 0.
func (in *Interp) Call(fn string, args ...int64) (int64, error) {
	f, ok := in.prog.Funcs[fn]
	if !ok {
		return 0, fmt.Errorf("mdl: no function %q", fn)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("mdl: %s expects %d args, got %d", fn, len(f.Params), len(args))
	}
	in.steps = 0
	return in.call(f, args)
}

func (in *Interp) call(f *Func, args []int64) (int64, error) {
	e := &env{vars: make(map[string]int64, len(f.Params)+4)}
	for i, p := range f.Params {
		e.vars[p] = args[i]
	}
	err := in.execBlock(f.Body, e)
	var ret errReturn
	if errors.As(err, &ret) {
		return ret.val, nil
	}
	if err != nil {
		return 0, err
	}
	return 0, nil
}

func (in *Interp) tick() error {
	in.steps++
	if in.steps > in.MaxSteps {
		return ErrStepBudget
	}
	return nil
}

func (in *Interp) execBlock(stmts []Stmt, e *env) error {
	for _, s := range stmts {
		if err := in.exec(s, e); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) exec(s Stmt, e *env) error {
	if err := in.tick(); err != nil {
		return err
	}
	in.covered[s.ID()] = true
	deleted := in.mut != nil && in.mut.Op == MutDeleteStmt && in.mut.Node == s.ID()
	switch st := s.(type) {
	case *Let:
		if deleted {
			// A deleted let still declares (as zero) so later reads
			// don't fault — mirroring "statement deletion" semantics.
			e.vars[st.Name] = 0
			return nil
		}
		v, err := in.eval(st.E, e)
		if err != nil {
			return err
		}
		e.vars[st.Name] = v
		return nil
	case *Assign:
		if deleted {
			return nil
		}
		if _, ok := e.vars[st.Name]; !ok {
			return fmt.Errorf("mdl: assignment to undeclared variable %q", st.Name)
		}
		v, err := in.eval(st.E, e)
		if err != nil {
			return err
		}
		e.vars[st.Name] = v
		return nil
	case *If:
		c, err := in.cond(st.NID, st.Cond, e)
		if err != nil {
			return err
		}
		if c {
			return in.execBlock(st.Then, e)
		}
		return in.execBlock(st.Else, e)
	case *While:
		for {
			c, err := in.cond(st.NID, st.Cond, e)
			if err != nil {
				return err
			}
			if !c {
				return nil
			}
			if err := in.execBlock(st.Body, e); err != nil {
				return err
			}
			if err := in.tick(); err != nil {
				return err
			}
		}
	case *Return:
		v, err := in.eval(st.E, e)
		if err != nil {
			return err
		}
		return errReturn{val: v}
	default:
		return fmt.Errorf("mdl: unknown statement %T", s)
	}
}

// cond evaluates a condition, applying a NegateCond mutation addressed
// at the owning statement.
func (in *Interp) cond(stmtID NodeID, c Expr, e *env) (bool, error) {
	v, err := in.eval(c, e)
	if err != nil {
		return false, err
	}
	b := v != 0
	if in.mut != nil && in.mut.Op == MutNegateCond && in.mut.Node == stmtID {
		b = !b
	}
	return b, nil
}

func boolVal(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (in *Interp) eval(x Expr, e *env) (int64, error) {
	if err := in.tick(); err != nil {
		return 0, err
	}
	switch ex := x.(type) {
	case *IntLit:
		if in.mut != nil && in.mut.Op == MutReplaceConst && in.mut.Node == ex.NID {
			return in.mut.NewVal, nil
		}
		return ex.Val, nil
	case *BoolLit:
		return boolVal(ex.Val), nil
	case *VarRef:
		v, ok := e.vars[ex.Name]
		if !ok {
			return 0, fmt.Errorf("mdl: undefined variable %q", ex.Name)
		}
		return v, nil
	case *Unary:
		v, err := in.eval(ex.X, e)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case TokNot:
			return boolVal(v == 0), nil
		case TokMinus:
			return -v, nil
		default:
			return 0, fmt.Errorf("mdl: bad unary op %s", ex.Op)
		}
	case *Call:
		f, ok := in.prog.Funcs[ex.Name]
		if !ok {
			return 0, fmt.Errorf("mdl: no function %q", ex.Name)
		}
		if len(ex.Args) != len(f.Params) {
			return 0, fmt.Errorf("mdl: %s expects %d args, got %d", ex.Name, len(f.Params), len(ex.Args))
		}
		args := make([]int64, len(ex.Args))
		for i, a := range ex.Args {
			v, err := in.eval(a, e)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return in.call(f, args)
	case *Binary:
		op := ex.Op
		if in.mut != nil && in.mut.Op == MutReplaceBinOp && in.mut.Node == ex.NID {
			op = in.mut.NewTok
		}
		// Short-circuit logicals.
		if op == TokAndAnd || op == TokOrOr {
			l, err := in.eval(ex.L, e)
			if err != nil {
				return 0, err
			}
			if op == TokAndAnd && l == 0 {
				return 0, nil
			}
			if op == TokOrOr && l != 0 {
				return 1, nil
			}
			r, err := in.eval(ex.R, e)
			if err != nil {
				return 0, err
			}
			return boolVal(r != 0), nil
		}
		l, err := in.eval(ex.L, e)
		if err != nil {
			return 0, err
		}
		r, err := in.eval(ex.R, e)
		if err != nil {
			return 0, err
		}
		switch op {
		case TokPlus:
			return l + r, nil
		case TokMinus:
			return l - r, nil
		case TokStar:
			return l * r, nil
		case TokSlash:
			if r == 0 {
				return 0, fmt.Errorf("mdl: division by zero")
			}
			return l / r, nil
		case TokPercent:
			if r == 0 {
				return 0, fmt.Errorf("mdl: modulo by zero")
			}
			return l % r, nil
		case TokLT:
			return boolVal(l < r), nil
		case TokLE:
			return boolVal(l <= r), nil
		case TokGT:
			return boolVal(l > r), nil
		case TokGE:
			return boolVal(l >= r), nil
		case TokEQ:
			return boolVal(l == r), nil
		case TokNE:
			return boolVal(l != r), nil
		default:
			return 0, fmt.Errorf("mdl: bad binary op %s", op)
		}
	default:
		return 0, fmt.Errorf("mdl: unknown expression %T", x)
	}
}

// Walk visits every node of the program (statements and expressions)
// in deterministic order.
func Walk(p *Program, visit func(n any)) {
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		visit(e)
		switch ex := e.(type) {
		case *Binary:
			walkExpr(ex.L)
			walkExpr(ex.R)
		case *Unary:
			walkExpr(ex.X)
		case *Call:
			for _, a := range ex.Args {
				walkExpr(a)
			}
		}
	}
	var walkStmts func(ss []Stmt)
	walkStmts = func(ss []Stmt) {
		for _, s := range ss {
			visit(s)
			switch st := s.(type) {
			case *Let:
				walkExpr(st.E)
			case *Assign:
				walkExpr(st.E)
			case *If:
				walkExpr(st.Cond)
				walkStmts(st.Then)
				walkStmts(st.Else)
			case *While:
				walkExpr(st.Cond)
				walkStmts(st.Body)
			case *Return:
				walkExpr(st.E)
			}
		}
	}
	for _, name := range p.Order {
		walkStmts(p.Funcs[name].Body)
	}
}

// CollectStmtIDs lists every statement node ID (coverage denominator).
func CollectStmtIDs(p *Program) []NodeID {
	var out []NodeID
	Walk(p, func(n any) {
		if s, ok := n.(Stmt); ok {
			out = append(out, s.ID())
		}
	})
	return out
}
