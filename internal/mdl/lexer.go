// Package mdl implements a small imperative behavioural model language
// (the "Model Description Language"): integer/boolean expressions,
// let/assign, if/else, while and return, organized into functions.
//
// The language exists because mutation analysis (Sec. 2.4 of the
// paper) needs an executable model whose syntax can be systematically
// perturbed. Commercial flows mutate VHDL/SystemC (Certitude [24],
// SystemC/TLM [25]); this package is the portable equivalent: models
// of HW/SW components are written in MDL, the mutation package seeds
// DeMillo-style syntactic faults into the AST, and testbenches are
// qualified by their ability to kill the mutants. The interpreter
// supports mutation schemata — one parsed program executing any single
// mutant selected at run time — which experiment E9 benchmarks against
// re-parsing per mutant.
package mdl

import (
	"fmt"
	"unicode"
)

// TokKind enumerates token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFunc
	TokLet
	TokIf
	TokElse
	TokWhile
	TokReturn
	TokTrue
	TokFalse
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokComma
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokLT
	TokLE
	TokGT
	TokGE
	TokEQ
	TokNE
	TokAndAnd
	TokOrOr
	TokNot
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokInt: "integer",
	TokFunc: "func", TokLet: "let", TokIf: "if", TokElse: "else",
	TokWhile: "while", TokReturn: "return", TokTrue: "true", TokFalse: "false",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokComma: ",", TokAssign: "=", TokPlus: "+", TokMinus: "-",
	TokStar: "*", TokSlash: "/", TokPercent: "%", TokLT: "<", TokLE: "<=",
	TokGT: ">", TokGE: ">=", TokEQ: "==", TokNE: "!=",
	TokAndAnd: "&&", TokOrOr: "||", TokNot: "!",
}

// String names the token kind.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", uint8(k))
}

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Val  int64 // TokInt only
	Line int
	Col  int
}

var keywords = map[string]TokKind{
	"func": TokFunc, "let": TokLet, "if": TokIf, "else": TokElse,
	"while": TokWhile, "return": TokReturn, "true": TokTrue, "false": TokFalse,
}

// Lex tokenizes MDL source. Comments run from '#' to end of line.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	emit := func(k TokKind, text string, val int64) {
		toks = append(toks, Token{Kind: k, Text: text, Val: val, Line: line, Col: col})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			col = 1
			i++
			continue
		case c == ' ' || c == '\t' || c == '\r':
			i++
			col++
			continue
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
			continue
		case unicode.IsDigit(rune(c)):
			start := i
			for i < len(src) && unicode.IsDigit(rune(src[i])) {
				i++
			}
			text := src[start:i]
			var v int64
			for _, d := range text {
				v = v*10 + int64(d-'0')
			}
			emit(TokInt, text, v)
			col += i - start
			continue
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			text := src[start:i]
			if k, ok := keywords[text]; ok {
				emit(k, text, 0)
			} else {
				emit(TokIdent, text, 0)
			}
			col += i - start
			continue
		}
		two := ""
		if i+1 < len(src) {
			two = src[i : i+2]
		}
		switch two {
		case "<=":
			emit(TokLE, two, 0)
			i += 2
			col += 2
			continue
		case ">=":
			emit(TokGE, two, 0)
			i += 2
			col += 2
			continue
		case "==":
			emit(TokEQ, two, 0)
			i += 2
			col += 2
			continue
		case "!=":
			emit(TokNE, two, 0)
			i += 2
			col += 2
			continue
		case "&&":
			emit(TokAndAnd, two, 0)
			i += 2
			col += 2
			continue
		case "||":
			emit(TokOrOr, two, 0)
			i += 2
			col += 2
			continue
		}
		single := map[byte]TokKind{
			'(': TokLParen, ')': TokRParen, '{': TokLBrace, '}': TokRBrace,
			',': TokComma, '=': TokAssign, '+': TokPlus, '-': TokMinus,
			'*': TokStar, '/': TokSlash, '%': TokPercent, '<': TokLT,
			'>': TokGT, '!': TokNot,
		}
		if k, ok := single[c]; ok {
			emit(k, string(c), 0)
			i++
			col++
			continue
		}
		return nil, fmt.Errorf("mdl: line %d col %d: unexpected character %q", line, col, c)
	}
	emit(TokEOF, "", 0)
	return toks, nil
}
