package mdl

import (
	"strings"
	"testing"
)

func TestPrinterAllStatementForms(t *testing.T) {
	src := `
func f(a) {
  let x = -a
  x = x + 1
  while x < 10 {
    x = x * 2
  }
  if !(x == 10) {
    return x
  } else {
    return 0
  }
}
func g() {
  return f(3)
}`
	p := MustParse(src)
	out := p.Print()
	for _, want := range []string{"while", "} else {", "return", "f(3)", "!("} {
		if !strings.Contains(out, want) {
			t.Errorf("printed source missing %q:\n%s", want, out)
		}
	}
	// Printed source must re-parse and behave identically.
	p2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	for _, in := range []int64{-5, 0, 3, 9, 100} {
		a, err1 := NewInterp(p).Call("f", in)
		b, err2 := NewInterp(p2).Call("f", in)
		if a != b || (err1 == nil) != (err2 == nil) {
			t.Fatalf("round-trip divergence at %d: %d vs %d", in, a, b)
		}
	}
}

func TestTokKindStrings(t *testing.T) {
	for k := TokEOF; k <= TokNot; k++ {
		if strings.HasPrefix(k.String(), "TokKind(") {
			t.Errorf("token %d unnamed", k)
		}
	}
	if !strings.HasPrefix(TokKind(200).String(), "TokKind(") {
		t.Error("unknown token named")
	}
}

func TestMutOpStrings(t *testing.T) {
	for m := MutReplaceBinOp; m <= MutDeleteStmt; m++ {
		if strings.HasPrefix(m.String(), "MutOp(") {
			t.Errorf("mutop %d unnamed", m)
		}
	}
	if !strings.HasPrefix(MutOp(9).String(), "MutOp(") {
		t.Error("unknown mutop named")
	}
}

func TestBoolLiteralsAndModulo(t *testing.T) {
	p := MustParse(`
func f(x) {
  let t = true
  let fa = false
  if t && !fa {
    return x % 3
  }
  return -1
}`)
	in := NewInterp(p)
	if v, err := in.Call("f", 10); err != nil || v != 1 {
		t.Errorf("f(10) = %d, %v", v, err)
	}
}

func TestWhileCondNegationMutation(t *testing.T) {
	p := MustParse(`
func f(n) {
  let i = 0
  while i < n {
    i = i + 1
  }
  return i
}`)
	var whileID NodeID = -1
	Walk(p, func(n any) {
		if w, ok := n.(*While); ok {
			whileID = w.NID
		}
	})
	in := NewInterp(p)
	in.MaxSteps = 10000
	in.SetMutation(&SchemataMut{Node: whileID, Op: MutNegateCond})
	// Negated condition: loop body never runs (i<n true -> negated false).
	v, err := in.Call("f", 5)
	if err != nil || v != 0 {
		t.Errorf("negated while f(5) = %d, %v", v, err)
	}
}

func TestDeleteLetStillDeclares(t *testing.T) {
	p := MustParse(`func f() { let x = 7 return x }`)
	var letID NodeID = -1
	Walk(p, func(n any) {
		if l, ok := n.(*Let); ok {
			letID = l.NID
		}
	})
	in := NewInterp(p)
	in.SetMutation(&SchemataMut{Node: letID, Op: MutDeleteStmt})
	v, err := in.Call("f")
	if err != nil || v != 0 {
		t.Errorf("deleted let: %d, %v (must declare as zero, not fault)", v, err)
	}
}

func TestUnaryMinusPrecedenceDeep(t *testing.T) {
	p := MustParse(`func f(a, b) { return -(a + b) * 2 }`)
	in := NewInterp(p)
	if v, _ := in.Call("f", 2, 3); v != -10 {
		t.Errorf("f = %d, want -10", v)
	}
}
