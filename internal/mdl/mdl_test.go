package mdl

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

const airbagSrc = `
# Simplified airbag firing decision.
func severity(accel, speed) {
  return accel * 2 + speed
}

func fire(accel, speed, armed) {
  let s = severity(accel, speed)
  if (s > 100) && (accel > 40) && (armed != 0) {
    return 1
  }
  return 0
}
`

func TestLexBasics(t *testing.T) {
	toks, err := Lex("func f(a) { return a <= 10 && !b }")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokFunc, TokIdent, TokLParen, TokIdent, TokRParen, TokLBrace,
		TokReturn, TokIdent, TokLE, TokInt, TokAndAnd, TokNot, TokIdent, TokRBrace, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("toks = %v", toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("tok[%d] = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("# only a comment\n42 # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].Kind != TokInt || toks[0].Val != 42 {
		t.Errorf("toks = %v", toks)
	}
}

func TestLexError(t *testing.T) {
	if _, err := Lex("func f() { @ }"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestParseAndRun(t *testing.T) {
	p, err := Parse(airbagSrc)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp(p)
	cases := []struct {
		accel, speed, armed int64
		want                int64
	}{
		{60, 50, 1, 1},  // severe crash, armed
		{60, 50, 0, 0},  // disarmed
		{10, 10, 1, 0},  // mild
		{41, 20, 1, 1},  // boundary: s=102>100, accel=41>40
		{40, 120, 1, 0}, // accel too low despite high severity
	}
	for _, c := range cases {
		got, err := in.Call("fire", c.accel, c.speed, c.armed)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("fire(%d,%d,%d) = %d, want %d", c.accel, c.speed, c.armed, got, c.want)
		}
	}
}

func TestWhileLoop(t *testing.T) {
	p := MustParse(`
func sumTo(n) {
  let acc = 0
  let i = 1
  while i <= n {
    acc = acc + i
    i = i + 1
  }
  return acc
}`)
	in := NewInterp(p)
	got, err := in.Call("sumTo", 10)
	if err != nil || got != 55 {
		t.Errorf("sumTo(10) = %d, %v", got, err)
	}
}

func TestUnaryAndPrecedence(t *testing.T) {
	p := MustParse(`
func f(a, b) {
  return -a + b * 2
}
func g(x) {
  if !(x > 5) {
    return 100
  }
  return 0
}`)
	in := NewInterp(p)
	if v, _ := in.Call("f", 3, 4); v != 5 {
		t.Errorf("f = %d, want 5 (-3 + 8)", v)
	}
	if v, _ := in.Call("g", 3); v != 100 {
		t.Errorf("g(3) = %d", v)
	}
	if v, _ := in.Call("g", 7); v != 0 {
		t.Errorf("g(7) = %d", v)
	}
}

func TestShortCircuit(t *testing.T) {
	// Division by zero on the right of && must not trigger when the
	// left is false.
	p := MustParse(`
func f(x) {
  if x != 0 && 10 / x > 1 {
    return 1
  }
  return 0
}`)
	in := NewInterp(p)
	if v, err := in.Call("f", 0); err != nil || v != 0 {
		t.Errorf("f(0) = %d, %v (short circuit broken)", v, err)
	}
	if v, err := in.Call("f", 5); err != nil || v != 1 {
		t.Errorf("f(5) = %d, %v", v, err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	in := NewInterp(MustParse(`func f(x) { return 1 / x }`))
	if _, err := in.Call("f", 0); err == nil {
		t.Error("division by zero not reported")
	}
	in2 := NewInterp(MustParse(`func f(x) { return 1 % x }`))
	if _, err := in2.Call("f", 0); err == nil {
		t.Error("modulo by zero not reported")
	}
	in3 := NewInterp(MustParse(`func f() { return y }`))
	if _, err := in3.Call("f"); err == nil {
		t.Error("undefined variable not reported")
	}
	in4 := NewInterp(MustParse(`func f() { x = 1 return x }`))
	if _, err := in4.Call("f"); err == nil {
		t.Error("assignment to undeclared variable not reported")
	}
	if _, err := in.Call("nosuch"); err == nil {
		t.Error("unknown function not reported")
	}
	if _, err := in.Call("f"); err == nil {
		t.Error("arity mismatch not reported")
	}
}

func TestStepBudget(t *testing.T) {
	in := NewInterp(MustParse(`func f() { while true { let x = 1 } return 0 }`))
	in.MaxSteps = 1000
	_, err := in.Call("f")
	if !errors.Is(err, ErrStepBudget) {
		t.Errorf("err = %v, want step budget", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"func f( { }",
		"func f() { let }",
		"func f() { if { } }",
		"func f() { return ",
		"func f() { } func f() { }",
		"42",
		"func f() { 42 }",
		"func f() { let x = (1 + }",
	}
	for i, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("bad program %d accepted: %q", i, src)
		}
	}
}

func TestPrintRoundTrip(t *testing.T) {
	p := MustParse(airbagSrc)
	printed := p.Print()
	p2, err := Parse(printed)
	if err != nil {
		t.Fatalf("printed source does not parse: %v\n%s", err, printed)
	}
	// Same observable behaviour.
	in1, in2 := NewInterp(p), NewInterp(p2)
	for accel := int64(0); accel <= 80; accel += 8 {
		for speed := int64(0); speed <= 120; speed += 24 {
			v1, err1 := in1.Call("fire", accel, speed, 1)
			v2, err2 := in2.Call("fire", accel, speed, 1)
			if v1 != v2 || (err1 == nil) != (err2 == nil) {
				t.Fatalf("round-trip divergence at (%d,%d)", accel, speed)
			}
		}
	}
	// Node IDs must be structurally stable across print/parse (the
	// printer only adds parentheses, which create no nodes).
	if p.NumNodes != p2.NumNodes {
		t.Errorf("NumNodes %d != %d after round trip", p.NumNodes, p2.NumNodes)
	}
}

func TestCoverageTracking(t *testing.T) {
	p := MustParse(`
func f(x) {
  if x > 0 {
    return 1
  }
  return 0
}`)
	in := NewInterp(p)
	if _, err := in.Call("f", 5); err != nil {
		t.Fatal(err)
	}
	// Statements: if, return 1, return 0 — the x<=0 path not taken.
	cov := in.CoverageFraction()
	if cov >= 1 || cov <= 0 {
		t.Errorf("partial coverage = %v", cov)
	}
	if _, err := in.Call("f", -5); err != nil {
		t.Fatal(err)
	}
	if in.CoverageFraction() != 1 {
		t.Errorf("full coverage = %v", in.CoverageFraction())
	}
	in.ResetCoverage()
	if len(in.Covered()) != 0 {
		t.Error("ResetCoverage did not clear")
	}
}

func TestSchemataMutations(t *testing.T) {
	p := MustParse(`func f(a, b) { let x = a + b if x > 10 { return x } return 0 }`)
	// Find node IDs.
	var plusID, letID, ifID NodeID
	var constID NodeID = -1
	Walk(p, func(n any) {
		switch node := n.(type) {
		case *Binary:
			if node.Op == TokPlus {
				plusID = node.NID
			}
		case *Let:
			letID = node.NID
		case *If:
			ifID = node.NID
		case *IntLit:
			if node.Val == 10 {
				constID = node.NID
			}
		}
	})
	run := func(m *SchemataMut, a, b int64) int64 {
		in := NewInterp(p)
		in.SetMutation(m)
		v, err := in.Call("f", a, b)
		if err != nil {
			t.Fatalf("mutant run failed: %v", err)
		}
		return v
	}
	if got := run(nil, 7, 8); got != 15 {
		t.Fatalf("golden = %d", got)
	}
	// + -> -: 7-8 = -1, not > 10 -> 0.
	if got := run(&SchemataMut{Node: plusID, Op: MutReplaceBinOp, NewTok: TokMinus}, 7, 8); got != 0 {
		t.Errorf("AOR mutant = %d, want 0", got)
	}
	// Negate if: x=15 > 10 becomes false -> 0.
	if got := run(&SchemataMut{Node: ifID, Op: MutNegateCond}, 7, 8); got != 0 {
		t.Errorf("NC mutant = %d, want 0", got)
	}
	// Delete let: x=0, not > 10 -> 0.
	if got := run(&SchemataMut{Node: letID, Op: MutDeleteStmt}, 7, 8); got != 0 {
		t.Errorf("SDL mutant = %d, want 0", got)
	}
	// Const 10 -> 20: x=15 not > 20 -> 0.
	if got := run(&SchemataMut{Node: constID, Op: MutReplaceConst, NewVal: 20}, 7, 8); got != 0 {
		t.Errorf("CRP mutant = %d, want 0", got)
	}
	// Mutation elsewhere leaves behaviour intact.
	if got := run(&SchemataMut{Node: 9999, Op: MutNegateCond}, 7, 8); got != 15 {
		t.Errorf("no-op mutant = %d, want 15", got)
	}
}

func TestFallOffEndReturnsZero(t *testing.T) {
	in := NewInterp(MustParse(`func f() { let x = 1 }`))
	v, err := in.Call("f")
	if err != nil || v != 0 {
		t.Errorf("fall-off = %d, %v", v, err)
	}
}

func TestMutualRecursion(t *testing.T) {
	p := MustParse(`
func isEven(n) {
  if n == 0 { return 1 }
  return isOdd(n - 1)
}
func isOdd(n) {
  if n == 0 { return 0 }
  return isEven(n - 1)
}`)
	in := NewInterp(p)
	if v, _ := in.Call("isEven", 10); v != 1 {
		t.Error("isEven(10)")
	}
	if v, _ := in.Call("isEven", 7); v != 0 {
		t.Error("isEven(7)")
	}
}

// Property: node IDs are dense and unique across the whole program.
func TestPropertyNodeIDsDense(t *testing.T) {
	f := func(a, b uint8) bool {
		p, err := Parse(airbagSrc)
		if err != nil {
			return false
		}
		seen := map[NodeID]bool{}
		count := 0
		Walk(p, func(n any) {
			var id NodeID
			switch x := n.(type) {
			case Expr:
				id = x.ID()
			case Stmt:
				id = x.ID()
			}
			if seen[id] {
				t.Fatalf("duplicate node ID %d", id)
			}
			seen[id] = true
			count++
		})
		return count == p.NumNodes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// Property: the interpreter agrees with a direct Go implementation of
// the airbag model on random inputs.
func TestPropertyInterpreterMatchesGo(t *testing.T) {
	p := MustParse(airbagSrc)
	in := NewInterp(p)
	goModel := func(accel, speed, armed int64) int64 {
		s := accel*2 + speed
		if s > 100 && accel > 40 && armed != 0 {
			return 1
		}
		return 0
	}
	f := func(accel, speed int16, armed bool) bool {
		a, s := int64(accel), int64(speed)
		var arm int64
		if armed {
			arm = 1
		}
		got, err := in.Call("fire", a, s, arm)
		return err == nil && got == goModel(a, s, arm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPrintContainsStructure(t *testing.T) {
	p := MustParse(airbagSrc)
	out := p.Print()
	for _, want := range []string{"func severity(accel, speed)", "func fire(accel, speed, armed)", "while", "if", "return"} {
		if want == "while" {
			continue // airbag model has no while
		}
		if !strings.Contains(out, want) {
			t.Errorf("printed source missing %q:\n%s", want, out)
		}
	}
}
