package uvm

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/tlm"
)

// leaf is a minimal component recording phase execution.
type leaf struct {
	Comp
	log *[]string
}

func newLeaf(parent Component, name string, log *[]string) *leaf {
	l := &leaf{log: log}
	NewComp(l, parent, name)
	return l
}

func (l *leaf) Build()   { *l.log = append(*l.log, "build:"+l.Name()) }
func (l *leaf) Connect() { *l.log = append(*l.log, "connect:"+l.Name()) }
func (l *leaf) Extract() { *l.log = append(*l.log, "extract:"+l.Name()) }

type top struct {
	Comp
	log *[]string
}

func newTop(name string, log *[]string) *top {
	t := &top{log: log}
	NewComp(t, nil, name)
	return t
}

func (t *top) Build() {
	*t.log = append(*t.log, "build:"+t.Name())
	newLeaf(t, "a", t.log)
	newLeaf(t, "b", t.log)
}
func (t *top) Connect() { *t.log = append(*t.log, "connect:"+t.Name()) }

func TestPhaseOrdering(t *testing.T) {
	k := sim.NewKernel()
	env := NewEnv(k)
	var log []string
	tp := newTop("top", &log)
	errs := env.RunTest(tp, sim.MS(1))
	if len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
	want := []string{
		"build:top", "build:a", "build:b", // top-down, incl. children created in Build
		"connect:a", "connect:b", "connect:top", // bottom-up
		"extract:a", "extract:b", // top has no Extract override
	}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("log[%d] = %s, want %s", i, log[i], want[i])
		}
	}
}

func TestFullNames(t *testing.T) {
	k := sim.NewKernel()
	env := NewEnv(k)
	var log []string
	tp := newTop("env", &log)
	env.Elaborate(tp)
	if tp.Children()[0].FullName() != "env.a" {
		t.Errorf("FullName = %q", tp.Children()[0].FullName())
	}
	if tp.FullName() != "env" {
		t.Errorf("top FullName = %q", tp.FullName())
	}
	h := env.Hierarchy()
	if !strings.Contains(h, "env\n  a\n  b\n") {
		t.Errorf("hierarchy:\n%s", h)
	}
}

type runner struct {
	Comp
	ticks *int
}

func (r *runner) Run(ctx *sim.ThreadCtx) {
	r.Env().RaiseObjection()
	for i := 0; i < 5; i++ {
		ctx.WaitTime(sim.NS(10))
		*r.ticks++
	}
	r.Env().DropObjection()
}

func TestObjectionEndsTest(t *testing.T) {
	k := sim.NewKernel()
	env := NewEnv(k)
	ticks := 0
	r := &runner{ticks: &ticks}
	NewComp(r, nil, "r")
	// A free-running clock would keep the kernel busy forever; the
	// objection mechanism must stop it.
	clk := k.NewEvent("clk")
	k.MethodNoInit("clkgen", func() { clk.Notify(sim.NS(1)) }, clk)
	clk.Notify(sim.NS(1))
	errs := env.RunTest(r, sim.TimeMax)
	if len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
	if k.Now() > sim.NS(60) {
		t.Errorf("test ran to %v; objection did not stop it", k.Now())
	}
}

func TestErrorfCollection(t *testing.T) {
	k := sim.NewKernel()
	env := NewEnv(k)
	var log []string
	tp := newTop("top", &log)
	env.Elaborate(tp)
	tp.Errorf("bad %d", 42)
	tp.Infof("hello")
	if len(env.Errors()) != 1 || !strings.Contains(env.Errors()[0], "top: bad 42") {
		t.Errorf("Errors = %v", env.Errors())
	}
	if len(env.Infos()) != 1 {
		t.Errorf("Infos = %v", env.Infos())
	}
}

func TestFactoryOverride(t *testing.T) {
	f := NewFactory()
	f.Register("driver", func() any { return "functional" })
	f.Register("err_driver", func() any { return "injecting" })
	v, err := f.Create("driver")
	if err != nil || v.(string) != "functional" {
		t.Fatalf("Create = %v, %v", v, err)
	}
	f.SetOverride("driver", "err_driver")
	v, err = f.Create("driver")
	if err != nil || v.(string) != "injecting" {
		t.Fatalf("overridden Create = %v, %v", v, err)
	}
	if !f.Registered("driver") || f.Registered("nope") {
		t.Error("Registered wrong")
	}
}

func TestFactoryOverrideChainAndCycle(t *testing.T) {
	f := NewFactory()
	f.Register("c", func() any { return 3 })
	f.SetOverride("a", "b")
	f.SetOverride("b", "c")
	v, err := f.Create("a")
	if err != nil || v.(int) != 3 {
		t.Fatalf("chained Create = %v, %v", v, err)
	}
	f.SetOverride("c", "a")
	if _, err := f.Create("a"); err == nil {
		t.Error("override cycle not detected")
	}
	if _, err := f.Create("unregistered"); err == nil {
		t.Error("unregistered type created")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCreate did not panic")
		}
	}()
	f.MustCreate("unregistered")
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"env.agent.driver", "env.agent.driver", true},
		{"env.*", "env.agent.driver", true},
		{"env.*.driver", "env.agent.driver", true},
		{"*.driver", "env.agent.driver", true},
		{"env.?gent.driver", "env.agent.driver", true},
		{"env.*", "other.agent", false},
		{"*", "anything.at.all", true},
		{"env.agent", "env.agent.driver", false},
		{"", "", true},
		{"**", "x", true},
	}
	for _, c := range cases {
		if got := globMatch(c.pat, c.s); got != c.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestConfigDBPrecedence(t *testing.T) {
	db := NewConfigDB()
	db.Set("env.*", "count", 10)
	db.Set("env.agent.driver", "count", 20)
	if v, ok := db.GetPath("env.agent.driver", "count"); !ok || v.(int) != 20 {
		t.Errorf("specific get = %v, %v", v, ok)
	}
	// Last write wins even when less specific.
	db.Set("env.*", "count", 30)
	if v, _ := db.GetPath("env.agent.driver", "count"); v.(int) != 30 {
		t.Errorf("last-write get = %v", v)
	}
	if _, ok := db.GetPath("env.agent.driver", "missing"); ok {
		t.Error("missing key found")
	}
}

func TestConfigDBTypedGetters(t *testing.T) {
	k := sim.NewKernel()
	env := NewEnv(k)
	var log []string
	tp := newTop("top", &log)
	env.Elaborate(tp)
	db := env.Config
	db.Set("top.a", "n", 7)
	db.Set("top.a", "s", "hi")
	db.Set("top.a", "b", true)
	a := tp.Children()[0]
	if db.GetInt(a, "n", -1) != 7 || db.GetString(a, "s", "") != "hi" || !db.GetBool(a, "b", false) {
		t.Error("typed getters wrong")
	}
	if db.GetInt(a, "nope", -1) != -1 {
		t.Error("default not returned")
	}
	db.Set("top.a", "n", "wrong-type")
	if db.GetInt(a, "n", -1) != -1 {
		t.Error("type mismatch should yield default")
	}
}

func TestAnalysisPortAndFIFO(t *testing.T) {
	p := NewAnalysisPort[int]("ap")
	var got []int
	p.Subscribe(func(v int) { got = append(got, v) })
	fifo := NewAnalysisFIFO(p)
	if p.Subscribers() != 2 {
		t.Errorf("subscribers = %d", p.Subscribers())
	}
	p.Write(1)
	p.Write(2)
	if len(got) != 2 || got[0] != 1 {
		t.Errorf("subscriber got %v", got)
	}
	if fifo.Len() != 2 {
		t.Errorf("fifo len = %d", fifo.Len())
	}
	v, ok := fifo.TryGet()
	if !ok || v != 1 {
		t.Errorf("TryGet = %v, %v", v, ok)
	}
	rest := fifo.Drain()
	if len(rest) != 1 || rest[0] != 2 {
		t.Errorf("Drain = %v", rest)
	}
	if _, ok := fifo.TryGet(); ok {
		t.Error("TryGet on empty fifo")
	}
}

func TestSequencerHandshake(t *testing.T) {
	k := sim.NewKernel()
	seq := NewSequencer[int](k, "seq")
	var drove []int
	var sendDone []sim.Time
	k.Thread("sequence", func(ctx *sim.ThreadCtx) {
		for i := 1; i <= 3; i++ {
			seq.Send(ctx, i*10)
			sendDone = append(sendDone, ctx.Now())
		}
	})
	k.Thread("driver", func(ctx *sim.ThreadCtx) {
		for i := 0; i < 3; i++ {
			item := seq.GetNext(ctx)
			ctx.WaitTime(sim.NS(100)) // bus time
			drove = append(drove, item)
			seq.ItemDone()
		}
	})
	if err := k.Run(sim.TimeMax); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if len(drove) != 3 || drove[0] != 10 || drove[2] != 30 {
		t.Errorf("drove = %v", drove)
	}
	// Send must block until the driver completed each item.
	want := []sim.Time{sim.NS(100), sim.NS(200), sim.NS(300)}
	for i := range want {
		if sendDone[i] != want[i] {
			t.Errorf("sendDone[%d] = %v, want %v", i, sendDone[i], want[i])
		}
	}
	pulled, completed := seq.Stats()
	if pulled != 3 || completed != 3 {
		t.Errorf("stats = %d, %d", pulled, completed)
	}
}

func TestSequencerTryNext(t *testing.T) {
	k := sim.NewKernel()
	seq := NewSequencer[string](k, "s")
	if _, ok := seq.TryNext(); ok {
		t.Error("TryNext on empty")
	}
	seq.Push("x")
	if seq.Pending() != 1 {
		t.Errorf("pending = %d", seq.Pending())
	}
	v, ok := seq.TryNext()
	if !ok || v != "x" {
		t.Errorf("TryNext = %q, %v", v, ok)
	}
}

func TestScoreboard(t *testing.T) {
	k := sim.NewKernel()
	env := NewEnv(k)
	sbTop := &struct{ Comp }{}
	NewComp(sbTop, nil, "t")
	sb := NewScoreboard[int](sbTop, "sb")
	env.Elaborate(sbTop)
	sb.Expect(1)
	sb.Expect(2)
	sb.Observe(1)
	sb.Observe(2)
	if !sb.Clean() || sb.Matched() != 2 || sb.Check() != nil {
		t.Error("clean scoreboard reports failure")
	}
	sb.Observe(3)
	if sb.Clean() {
		t.Error("surplus not detected")
	}
	if err := sb.Check(); err == nil {
		t.Error("Check passed with surplus")
	}
}

func TestScoreboardMismatchAndMissing(t *testing.T) {
	k := sim.NewKernel()
	_ = k
	sbTop := &struct{ Comp }{}
	NewComp(sbTop, nil, "t")
	sb := NewScoreboard[string](sbTop, "sb")
	sb.Expect("a")
	sb.Observe("b")
	if len(sb.Mismatches()) != 1 {
		t.Errorf("mismatches = %v", sb.Mismatches())
	}
	sb2 := NewScoreboard[string](sbTop, "sb2")
	sb2.Expect("never")
	if err := sb2.Check(); err == nil || !strings.Contains(err.Error(), "never observed") {
		t.Errorf("missing check = %v", err)
	}
}

// memItem is the transaction type of the end-to-end testbench test.
type memItem struct {
	addr uint64
	data byte
}

// memEnv is a complete UVM testbench around a TLM memory DUT:
// sequence -> sequencer -> driver -> DUT, monitor -> scoreboard.
type memEnv struct {
	Comp
	dut *tlm.Memory
	seq *Sequencer[memItem]
	ap  *AnalysisPort[memItem]
	sb  *Scoreboard[memItem]
	n   int
}

func newMemEnv(k *sim.Kernel, n int) *memEnv {
	e := &memEnv{dut: tlm.NewMemory("dut", 0, 256), n: n}
	NewComp(e, nil, "env")
	e.seq = NewSequencer[memItem](k, "env.seq")
	e.ap = NewAnalysisPort[memItem]("env.ap")
	e.sb = NewScoreboard[memItem](e, "sb")
	return e
}

func (e *memEnv) Connect() {
	e.ap.Subscribe(func(it memItem) { e.sb.Observe(it) })
}

func (e *memEnv) Run(ctx *sim.ThreadCtx) {
	e.Env().RaiseObjection()
	// Sequence: write then read back each address; expect the readback.
	go func() {}() // no goroutines needed; inline both roles via child threads
	k := e.Kernel()
	k.Thread("driver", func(dctx *sim.ThreadCtx) {
		sock := tlm.NewInitiatorSocket("drv")
		sock.Bind(e.dut)
		for {
			item := e.seq.GetNext(dctx)
			var d sim.Time
			sock.Write(item.addr, []byte{item.data}, &d)
			got, _ := sock.Read(item.addr, 1, &d)
			dctx.WaitTime(d)
			e.ap.Write(memItem{addr: item.addr, data: got[0]}) // monitor-on-driver
			e.seq.ItemDone()
		}
	})
	for i := 0; i < e.n; i++ {
		it := memItem{addr: uint64(i * 3 % 256), data: byte(i*7 + 1)}
		e.sb.Expect(it)
		e.seq.Send(ctx, it)
	}
	e.Env().DropObjection()
}

func TestEndToEndTestbench(t *testing.T) {
	k := sim.NewKernel()
	env := NewEnv(k)
	e := newMemEnv(k, 20)
	e.dut.ReadLatency = sim.NS(10)
	e.dut.WriteLatency = sim.NS(10)
	errs := env.RunTest(e, sim.TimeMax)
	if len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
	if e.sb.Matched() != 20 {
		t.Errorf("matched = %d, want 20", e.sb.Matched())
	}
}

// The same testbench detects an injected memory fault: the scoreboard
// is the failure detector of the error-effect simulation loop.
func TestEndToEndTestbenchDetectsFault(t *testing.T) {
	k := sim.NewKernel()
	env := NewEnv(k)
	e := newMemEnv(k, 20)
	if err := e.dut.StuckAt(3, 0, true); err != nil { // addr 3 bit 0 stuck-at-1
		t.Fatal(err)
	}
	errs := env.RunTest(e, sim.TimeMax)
	if len(errs) == 0 {
		t.Fatal("injected fault not detected by scoreboard")
	}
	if !strings.Contains(errs[0], "mismatch") {
		t.Errorf("errs = %v", errs)
	}
}

// Property: glob matching is reflexive for any literal path (no
// metacharacters) and any path matches "*".
func TestPropertyGlobReflexive(t *testing.T) {
	f := func(segs []uint8) bool {
		parts := make([]string, 0, len(segs))
		for _, s := range segs {
			parts = append(parts, string(rune('a'+s%26)))
		}
		path := strings.Join(parts, ".")
		return globMatch(path, path) && globMatch("*", path)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the sequencer preserves FIFO order for any push sequence.
func TestPropertySequencerFIFO(t *testing.T) {
	f := func(items []int16) bool {
		if len(items) > 100 {
			items = items[:100]
		}
		k := sim.NewKernel()
		seq := NewSequencer[int16](k, "s")
		for _, it := range items {
			seq.Push(it)
		}
		for _, want := range items {
			got, ok := seq.TryNext()
			if !ok || got != want {
				return false
			}
		}
		_, ok := seq.TryNext()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
