// Package uvm implements a Go rendition of the Universal Verification
// Methodology testbench library: a phased component hierarchy (agents,
// drivers, monitors, sequencers, scoreboards, environments), analysis
// ports, a factory with type overrides, a hierarchical configuration
// database and an objection-based end-of-test mechanism.
//
// The paper (Sec. 2.3, 3.3) argues that UVM's reuse concepts should be
// carried beyond SystemVerilog — it cites SystemC-UVM and SVM as
// language ports — and that fault/error evaluation should slot into
// such testbenches as an additional stressor component with injector
// interfaces. This package is that port for Go: the stressor package
// implements a uvm.Component, and injectors ride on the same
// configuration and analysis plumbing as functional verification.
package uvm

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Component is one node of the testbench hierarchy. Embed *Comp to get
// the wiring for free and override the phase hooks you need.
type Component interface {
	// Name is the leaf instance name.
	Name() string
	// FullName is the dot-separated hierarchical path.
	FullName() string
	// Parent is the enclosing component (nil for the top).
	Parent() Component
	// Children lists sub-components in creation order.
	Children() []Component

	// Build runs top-down before simulation; create late children here.
	Build()
	// Connect runs bottom-up after Build; bind ports here.
	Connect()
	// Run is the run-phase body, executed as a kernel thread process.
	// Components with nothing to do leave the default no-op.
	Run(ctx *sim.ThreadCtx)
	// Extract runs after simulation, bottom-up (gather results).
	Extract()
	// Check runs after Extract; return an error to fail the test.
	Check() error

	base() *Comp
}

// Comp is the embeddable base component.
type Comp struct {
	name   string
	parent Component
	kids   []Component
	env    *Env
	self   Component
}

// NewComp initializes an embedded base and registers it with its
// parent. self must be the embedding component (Go embedding has no
// virtual dispatch, so the base keeps an interface back-pointer).
func NewComp(self Component, parent Component, name string) *Comp {
	c := self.base()
	c.name = name
	c.parent = parent
	c.self = self
	if parent != nil {
		pb := parent.base()
		pb.kids = append(pb.kids, self)
		c.env = pb.env
	}
	return c
}

// Name implements Component.
func (c *Comp) Name() string { return c.name }

// Parent implements Component.
func (c *Comp) Parent() Component { return c.parent }

// Children implements Component.
func (c *Comp) Children() []Component { return c.kids }

// FullName implements Component.
func (c *Comp) FullName() string {
	if c.parent == nil {
		return c.name
	}
	return c.parent.FullName() + "." + c.name
}

// Build implements Component (no-op default).
func (c *Comp) Build() {}

// Connect implements Component (no-op default).
func (c *Comp) Connect() {}

// Run implements Component (no-op default).
func (c *Comp) Run(ctx *sim.ThreadCtx) {}

// Extract implements Component (no-op default).
func (c *Comp) Extract() {}

// Check implements Component (no-op default).
func (c *Comp) Check() error { return nil }

func (c *Comp) base() *Comp { return c }

// Env returns the test environment the component runs under (valid
// from the build phase onward).
func (c *Comp) Env() *Env { return c.env }

// Kernel returns the simulation kernel.
func (c *Comp) Kernel() *sim.Kernel { return c.env.Kernel }

// Errorf records a test error against this component.
func (c *Comp) Errorf(format string, args ...any) {
	c.env.recordError(fmt.Sprintf("%s: %s", c.FullName(), fmt.Sprintf(format, args...)))
}

// Infof records an informational message at default verbosity.
func (c *Comp) Infof(format string, args ...any) {
	c.env.recordInfo(fmt.Sprintf("%s: %s", c.FullName(), fmt.Sprintf(format, args...)))
}

// Env orchestrates the phased execution of a component tree on a
// kernel, carries the factory and configuration database, and collects
// messages. It is the uvm_root/uvm_test_top analogue.
type Env struct {
	Kernel  *sim.Kernel
	Factory *Factory
	Config  *ConfigDB

	top        Component
	errors     []string
	infos      []string
	objections int
	objRaised  bool
	objEv      *sim.Event
}

// NewEnv creates an environment on a kernel.
func NewEnv(k *sim.Kernel) *Env {
	return &Env{
		Kernel:  k,
		Factory: NewFactory(),
		Config:  NewConfigDB(),
		objEv:   k.NewEvent("uvm.objections"),
	}
}

func (e *Env) recordError(msg string) { e.errors = append(e.errors, msg) }
func (e *Env) recordInfo(msg string)  { e.infos = append(e.infos, msg) }

// Errors reports test errors recorded so far.
func (e *Env) Errors() []string { return e.errors }

// Infos reports informational messages recorded so far.
func (e *Env) Infos() []string { return e.infos }

// RaiseObjection keeps the run phase alive (drop it when done).
func (e *Env) RaiseObjection() {
	e.objections++
	e.objRaised = true
}

// DropObjection releases one objection; when all raised objections are
// dropped the run phase ends.
func (e *Env) DropObjection() {
	if e.objections == 0 {
		panic("uvm: DropObjection without matching Raise")
	}
	e.objections--
	if e.objections == 0 {
		e.objEv.Notify(0)
	}
}

// visit walks the tree; Build may append children mid-walk, so the
// walker re-reads child slices.
func visitTopDown(c Component, f func(Component)) {
	f(c)
	for i := 0; i < len(c.Children()); i++ {
		visitTopDown(c.Children()[i], f)
	}
}

func visitBottomUp(c Component, f func(Component)) {
	for i := 0; i < len(c.Children()); i++ {
		visitBottomUp(c.Children()[i], f)
	}
	f(c)
}

// Elaborate runs the build and connect phases for the tree rooted at
// top.
func (e *Env) Elaborate(top Component) {
	e.top = top
	top.base().env = e
	visitTopDown(top, func(c Component) {
		c.base().env = e
		c.Build()
	})
	visitBottomUp(top, func(c Component) { c.Connect() })
}

// Run executes the run phase: every component's Run body is spawned as
// a kernel thread, then the kernel advances until the horizon, until
// no events remain, or — when objections were raised — until the last
// objection drops.
func (e *Env) Run(until sim.Time) error {
	if e.top == nil {
		return fmt.Errorf("uvm: Run before Elaborate")
	}
	visitTopDown(e.top, func(c Component) {
		cc := c
		e.Kernel.Thread(cc.FullName()+".run", func(ctx *sim.ThreadCtx) {
			cc.Run(ctx)
		})
	})
	e.Kernel.MethodNoInit("uvm.end_of_test", func() {
		if e.objRaised && e.objections == 0 {
			e.Kernel.Stop()
		}
	}, e.objEv)
	return e.Kernel.Run(until)
}

// Finish runs extract and check phases and returns the accumulated
// test errors (check failures are appended).
func (e *Env) Finish() []string {
	visitBottomUp(e.top, func(c Component) { c.Extract() })
	visitBottomUp(e.top, func(c Component) {
		if err := c.Check(); err != nil {
			e.recordError(fmt.Sprintf("%s: check: %v", c.FullName(), err))
		}
	})
	return e.errors
}

// RunTest is the convenience one-shot: elaborate, run, finish,
// shutdown. It returns the collected errors.
func (e *Env) RunTest(top Component, until sim.Time) []string {
	e.Elaborate(top)
	if err := e.Run(until); err != nil {
		e.recordError("kernel: " + err.Error())
	}
	errs := e.Finish()
	e.Kernel.Shutdown()
	return errs
}

// Hierarchy renders the component tree as an indented listing.
func (e *Env) Hierarchy() string {
	var b strings.Builder
	var walk func(c Component, depth int)
	walk = func(c Component, depth int) {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", depth), c.Name())
		for _, k := range c.Children() {
			walk(k, depth+1)
		}
	}
	if e.top != nil {
		walk(e.top, 0)
	}
	return b.String()
}
