package uvm

import "repro/internal/sim"

// Sequencer mediates between sequences (stimulus generators) and a
// driver: sequences push items, the driver pulls them one at a time
// and acknowledges completion, giving the standard UVM
// get_next_item/item_done handshake. One driver may pull from a
// sequencer; any number of sequences may push (items interleave in
// push order).
type Sequencer[T any] struct {
	k     *sim.Kernel
	name  string
	queue []T
	avail *sim.Event
	done  *sim.Event

	pulled    uint64
	completed uint64
}

// NewSequencer creates a sequencer on the kernel.
func NewSequencer[T any](k *sim.Kernel, name string) *Sequencer[T] {
	return &Sequencer[T]{
		k:     k,
		name:  name,
		avail: k.NewEvent(name + ".avail"),
		done:  k.NewEvent(name + ".done"),
	}
}

// Name reports the sequencer name.
func (s *Sequencer[T]) Name() string { return s.name }

// Push enqueues an item without waiting for its completion.
func (s *Sequencer[T]) Push(item T) {
	s.queue = append(s.queue, item)
	s.avail.Notify(0)
}

// Send enqueues an item and blocks the calling sequence until the
// driver calls ItemDone for it (strict in-order completion).
func (s *Sequencer[T]) Send(ctx *sim.ThreadCtx, item T) {
	s.Push(item)
	target := s.pushedCount()
	for s.completed < target {
		ctx.Wait(s.done)
	}
}

// pushedCount is the sequence number of the most recently pushed item.
func (s *Sequencer[T]) pushedCount() uint64 {
	return s.pulled + uint64(len(s.queue))
}

// GetNext blocks the driver until an item is available and pops it.
func (s *Sequencer[T]) GetNext(ctx *sim.ThreadCtx) T {
	for len(s.queue) == 0 {
		ctx.Wait(s.avail)
	}
	item := s.queue[0]
	s.queue = s.queue[1:]
	s.pulled++
	return item
}

// TryNext pops an item without blocking; ok is false when idle.
func (s *Sequencer[T]) TryNext() (item T, ok bool) {
	if len(s.queue) == 0 {
		return item, false
	}
	item = s.queue[0]
	s.queue = s.queue[1:]
	s.pulled++
	return item, true
}

// ItemDone acknowledges completion of the last pulled item, releasing
// a blocked Send.
func (s *Sequencer[T]) ItemDone() {
	s.completed++
	s.done.Notify(0)
}

// Pending reports queued (not yet pulled) items.
func (s *Sequencer[T]) Pending() int { return len(s.queue) }

// Stats reports items pulled by the driver and completions.
func (s *Sequencer[T]) Stats() (pulled, completed uint64) {
	return s.pulled, s.completed
}
