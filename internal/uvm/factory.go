package uvm

import "fmt"

// Factory is the UVM factory: components and transaction types are
// created by registered name so tests can substitute derived types
// (e.g. swap a functional driver for an error-injecting one) without
// touching the environment code — "high reconfiguration and reuse
// potential for system-level safety evaluation" (Sec. 2.3).
type Factory struct {
	ctors     map[string]func() any
	overrides map[string]string
}

// NewFactory creates an empty factory.
func NewFactory() *Factory {
	return &Factory{ctors: make(map[string]func() any), overrides: make(map[string]string)}
}

// Register binds a constructor to a type name. Re-registering a name
// replaces the constructor.
func (f *Factory) Register(name string, ctor func() any) {
	f.ctors[name] = ctor
}

// SetOverride redirects requests for orig to repl. Overrides chain:
// A->B and B->C resolve A to C.
func (f *Factory) SetOverride(orig, repl string) {
	f.overrides[orig] = repl
}

// resolve follows the override chain with a cycle guard.
func (f *Factory) resolve(name string) (string, error) {
	seen := map[string]bool{name: true}
	for {
		next, ok := f.overrides[name]
		if !ok {
			return name, nil
		}
		if seen[next] {
			return "", fmt.Errorf("uvm: factory override cycle through %q", next)
		}
		seen[next] = true
		name = next
	}
}

// Create instantiates the (override-resolved) type.
func (f *Factory) Create(name string) (any, error) {
	resolved, err := f.resolve(name)
	if err != nil {
		return nil, err
	}
	ctor, ok := f.ctors[resolved]
	if !ok {
		return nil, fmt.Errorf("uvm: factory type %q not registered (requested %q)", resolved, name)
	}
	return ctor(), nil
}

// MustCreate is Create that panics on error (elaboration-time use).
func (f *Factory) MustCreate(name string) any {
	v, err := f.Create(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Registered reports whether a type name (pre-override) is known.
func (f *Factory) Registered(name string) bool {
	_, ok := f.ctors[name]
	return ok
}
