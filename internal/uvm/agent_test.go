package uvm

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/tlm"
)

// agentEnv is a full agent-based testbench around a TLM memory.
type agentEnv struct {
	Comp
	dut   *tlm.Memory
	agent *Agent[memItem]
	sb    *Scoreboard[memItem]
	n     int
}

func newAgentEnv(k *sim.Kernel, n int) *agentEnv {
	e := &agentEnv{dut: tlm.NewMemory("dut", 0, 256), n: n}
	NewComp(e, nil, "env")
	e.agent = NewAgent[memItem](k, e, "agent")
	e.sb = NewScoreboard[memItem](e, "sb")
	sock := tlm.NewInitiatorSocket("drv")
	sock.Bind(e.dut)
	e.agent.Drive = func(ctx *sim.ThreadCtx, it memItem) memItem {
		var d sim.Time
		sock.Write(it.addr, []byte{it.data}, &d)
		got, _ := sock.Read(it.addr, 1, &d)
		ctx.WaitTime(d)
		return memItem{addr: it.addr, data: got[0]}
	}
	return e
}

func (e *agentEnv) Connect() {
	e.agent.Monitor.Subscribe(func(it memItem) { e.sb.Observe(it) })
}

func (e *agentEnv) Run(ctx *sim.ThreadCtx) {
	e.Env().RaiseObjection()
	defer e.Env().DropObjection()
	for i := 0; i < e.n; i++ {
		it := memItem{addr: uint64(i % 256), data: byte(3*i + 1)}
		e.sb.Expect(it)
		e.agent.Sequencer.Send(ctx, it)
	}
}

func TestAgentDrivesAndMonitors(t *testing.T) {
	k := sim.NewKernel()
	env := NewEnv(k)
	e := newAgentEnv(k, 16)
	e.dut.WriteLatency = sim.NS(10)
	errs := env.RunTest(e, sim.TimeMax)
	if len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
	if e.sb.Matched() != 16 {
		t.Errorf("matched = %d", e.sb.Matched())
	}
	if e.agent.Driven() != 16 {
		t.Errorf("driven = %d", e.agent.Driven())
	}
}

func TestAgentDetectsInjectedFault(t *testing.T) {
	k := sim.NewKernel()
	env := NewEnv(k)
	e := newAgentEnv(k, 16)
	if err := e.dut.StuckAt(5, 1, true); err != nil {
		t.Fatal(err)
	}
	errs := env.RunTest(e, sim.TimeMax)
	if len(errs) == 0 {
		t.Error("stuck-at cell escaped the agent-based testbench")
	}
}

func TestPassiveAgentDoesNotDrive(t *testing.T) {
	k := sim.NewKernel()
	env := NewEnv(k)
	topc := &struct{ Comp }{}
	NewComp(topc, nil, "top")
	a := NewAgent[int](k, topc, "passive")
	a.Active = false
	a.Drive = func(ctx *sim.ThreadCtx, v int) int { return v }
	a.Sequencer.Push(1)
	errs := env.RunTest(topc, sim.MS(1))
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	if a.Driven() != 0 {
		t.Error("passive agent drove items")
	}
	if a.Sequencer.Pending() != 1 {
		t.Error("passive agent consumed the queue")
	}
}
