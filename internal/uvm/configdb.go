package uvm

import "strings"

// ConfigDB is the hierarchical configuration database: values are set
// against a glob pattern over component full names plus a key, and
// components look themselves up. Later Set calls win over earlier
// ones, and a more literal match is not preferred over a later glob —
// matching UVM's "last write wins" precedence, which is what makes
// test-specific overrides (e.g. pointing the stressor at a different
// injector) work without editing the environment.
type ConfigDB struct {
	entries []cfgEntry
}

type cfgEntry struct {
	pattern string
	key     string
	value   any
}

// NewConfigDB creates an empty database.
func NewConfigDB() *ConfigDB {
	return &ConfigDB{}
}

// Set stores value under (pattern, key). The pattern matches component
// full names; '*' matches any run of characters (including dots) and
// '?' matches one character.
func (db *ConfigDB) Set(pattern, key string, value any) {
	db.entries = append(db.entries, cfgEntry{pattern: pattern, key: key, value: value})
}

// Get looks up key for the component; the most recent matching Set
// wins. ok is false when nothing matches.
func (db *ConfigDB) Get(c Component, key string) (value any, ok bool) {
	return db.GetPath(c.FullName(), key)
}

// GetPath looks up key against an explicit hierarchical path.
func (db *ConfigDB) GetPath(path, key string) (value any, ok bool) {
	for i := len(db.entries) - 1; i >= 0; i-- {
		e := &db.entries[i]
		if e.key == key && globMatch(e.pattern, path) {
			return e.value, true
		}
	}
	return nil, false
}

// GetInt is Get with an int assertion; def is returned on miss or
// type mismatch.
func (db *ConfigDB) GetInt(c Component, key string, def int) int {
	if v, ok := db.Get(c, key); ok {
		if i, ok := v.(int); ok {
			return i
		}
	}
	return def
}

// GetString is Get with a string assertion.
func (db *ConfigDB) GetString(c Component, key string, def string) string {
	if v, ok := db.Get(c, key); ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return def
}

// GetBool is Get with a bool assertion.
func (db *ConfigDB) GetBool(c Component, key string, def bool) bool {
	if v, ok := db.Get(c, key); ok {
		if b, ok := v.(bool); ok {
			return b
		}
	}
	return def
}

// globMatch matches pattern against s where '*' spans any run
// (including dots, so "env.*" reaches all descendants) and '?' matches
// exactly one character.
func globMatch(pattern, s string) bool {
	// Iterative two-pointer glob with backtracking on the last '*'.
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '?' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '*':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	return strings.Trim(pattern[pi:], "*") == ""
}
