package uvm

import "repro/internal/sim"

// Agent bundles the standard UVM trio — sequencer, driver and monitor
// — into one reusable component ("UVM components utilize TLM
// interfaces for communication and make use of UVM agents to interact
// with the DUT", Sec. 2.3 of the paper). An active agent owns the
// run-phase loop: it pulls items from its sequencer, hands them to
// the driver function, and publishes what the driver observed on the
// monitor port. A passive agent (Active=false) only exposes the
// monitor port for someone else to publish into.
type Agent[T any] struct {
	Comp
	// Sequencer feeds the driver.
	Sequencer *Sequencer[T]
	// Drive executes one item against the DUT and returns the
	// observed transaction (what a bus monitor would have seen).
	Drive func(ctx *sim.ThreadCtx, item T) T
	// Monitor broadcasts observed transactions.
	Monitor *AnalysisPort[T]
	// Active selects whether the agent runs the driver loop.
	Active bool

	driven uint64
}

// NewAgent creates an active agent under parent.
func NewAgent[T any](k *sim.Kernel, parent Component, name string) *Agent[T] {
	a := &Agent[T]{Active: true}
	NewComp(a, parent, name)
	a.Sequencer = NewSequencer[T](k, a.FullName()+".sqr")
	a.Monitor = NewAnalysisPort[T](a.FullName() + ".mon")
	return a
}

// Driven reports how many items the driver executed.
func (a *Agent[T]) Driven() uint64 { return a.driven }

// Run implements Component: the get_next_item / drive / item_done /
// monitor loop. The loop runs until the simulation ends (agents do
// not hold objections; sequences do).
func (a *Agent[T]) Run(ctx *sim.ThreadCtx) {
	if !a.Active || a.Drive == nil {
		return
	}
	for {
		item := a.Sequencer.GetNext(ctx)
		observed := a.Drive(ctx, item)
		a.driven++
		a.Monitor.Write(observed)
		a.Sequencer.ItemDone()
	}
}
