package uvm

import "fmt"

// Scoreboard is an in-order expected-vs-observed comparator: reference
// transactions go in with Expect, DUT transactions with Observe, and
// the check phase fails on any mismatch, missing or surplus
// transaction. For safety evaluation the same scoreboard doubles as a
// failure detector: a mismatch under fault injection is an observed
// error (experiments E2-E5 classify on exactly this).
type Scoreboard[T comparable] struct {
	Comp
	expected   []T
	mismatches []string
	matched    int
	observed   int
}

// NewScoreboard creates a scoreboard component under parent.
func NewScoreboard[T comparable](parent Component, name string) *Scoreboard[T] {
	sb := &Scoreboard[T]{}
	NewComp(sb, parent, name)
	return sb
}

// Expect queues a reference transaction.
func (s *Scoreboard[T]) Expect(v T) {
	s.expected = append(s.expected, v)
}

// Observe submits a DUT transaction for in-order comparison.
func (s *Scoreboard[T]) Observe(v T) {
	s.observed++
	if len(s.expected) == 0 {
		s.mismatches = append(s.mismatches, fmt.Sprintf("surplus transaction %v", v))
		return
	}
	want := s.expected[0]
	s.expected = s.expected[1:]
	if v != want {
		s.mismatches = append(s.mismatches, fmt.Sprintf("mismatch: got %v, want %v", v, want))
		return
	}
	s.matched++
}

// Matched reports transactions that compared equal.
func (s *Scoreboard[T]) Matched() int { return s.matched }

// Observed reports total transactions submitted.
func (s *Scoreboard[T]) Observed() int { return s.observed }

// Mismatches reports the recorded comparison failures.
func (s *Scoreboard[T]) Mismatches() []string { return s.mismatches }

// Clean reports whether every expected transaction matched and none
// are outstanding.
func (s *Scoreboard[T]) Clean() bool {
	return len(s.mismatches) == 0 && len(s.expected) == 0
}

// Check implements Component: it fails on mismatches or missing
// transactions.
func (s *Scoreboard[T]) Check() error {
	if len(s.mismatches) > 0 {
		return fmt.Errorf("%d mismatches, first: %s", len(s.mismatches), s.mismatches[0])
	}
	if len(s.expected) > 0 {
		return fmt.Errorf("%d expected transactions never observed", len(s.expected))
	}
	return nil
}
