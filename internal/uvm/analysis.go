package uvm

// AnalysisPort broadcasts transactions from monitors to any number of
// subscribers (scoreboards, coverage collectors, failure classifiers).
// Writes are synchronous function calls in subscription order, which
// keeps campaigns deterministic.
type AnalysisPort[T any] struct {
	name string
	subs []func(T)
}

// NewAnalysisPort creates a named port.
func NewAnalysisPort[T any](name string) *AnalysisPort[T] {
	return &AnalysisPort[T]{name: name}
}

// Name reports the port name.
func (p *AnalysisPort[T]) Name() string { return p.name }

// Subscribe registers a callback for every Write.
func (p *AnalysisPort[T]) Subscribe(fn func(T)) {
	p.subs = append(p.subs, fn)
}

// Write broadcasts one transaction to all subscribers.
func (p *AnalysisPort[T]) Write(v T) {
	for _, fn := range p.subs {
		fn(v)
	}
}

// Subscribers reports how many callbacks are attached (connectivity
// checks during the connect phase).
func (p *AnalysisPort[T]) Subscribers() int { return len(p.subs) }

// AnalysisFIFO is a subscriber that queues transactions for later
// pull-mode consumption (the uvm_tlm_analysis_fifo analogue).
type AnalysisFIFO[T any] struct {
	items []T
}

// NewAnalysisFIFO creates an empty FIFO and subscribes it to the port.
func NewAnalysisFIFO[T any](port *AnalysisPort[T]) *AnalysisFIFO[T] {
	f := &AnalysisFIFO[T]{}
	port.Subscribe(func(v T) { f.items = append(f.items, v) })
	return f
}

// Len reports queued transactions.
func (f *AnalysisFIFO[T]) Len() int { return len(f.items) }

// TryGet pops the oldest transaction; ok is false when empty.
func (f *AnalysisFIFO[T]) TryGet() (v T, ok bool) {
	if len(f.items) == 0 {
		return v, false
	}
	v = f.items[0]
	f.items = f.items[1:]
	return v, true
}

// Drain returns and clears all queued transactions.
func (f *AnalysisFIFO[T]) Drain() []T {
	out := f.items
	f.items = nil
	return out
}
