package stressor

import (
	"fmt"

	"repro/internal/fault"
)

// RunFunc executes one complete fault-injected simulation for the
// given scenario — building a fresh virtual prototype, injecting,
// running and classifying — and returns the outcome. Campaigns stay
// agnostic of what the prototype is; the CAPS and ECU experiments
// supply their own RunFuncs.
type RunFunc func(sc fault.Scenario) fault.Outcome

// Campaign repeats stress tests over a scenario list: the quantitative
// evaluation loop of Sec. 3.4.
type Campaign struct {
	// Name labels the campaign in reports.
	Name string
	// Run executes one scenario.
	Run RunFunc
	// StopOnFirst aborts the campaign at the first unhandled failure —
	// the "how many runs until the critical effect is found" metric of
	// experiment E4.
	StopOnFirst bool
}

// Result is a finished campaign.
type Result struct {
	Name     string
	Outcomes []fault.Outcome
	Tally    fault.Tally
	// RunsToFirstFailure is the 1-based index of the first unhandled
	// failure, or 0 when none occurred.
	RunsToFirstFailure int
}

// Execute runs every scenario (validating first) and tallies
// classifications.
func (c *Campaign) Execute(scenarios []fault.Scenario) (*Result, error) {
	res := &Result{Name: c.Name, Tally: make(fault.Tally)}
	for i, sc := range scenarios {
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("campaign %s: %w", c.Name, err)
		}
		o := c.Run(sc)
		res.Outcomes = append(res.Outcomes, o)
		res.Tally.Add(o)
		if o.Class.IsFailure() && res.RunsToFirstFailure == 0 {
			res.RunsToFirstFailure = i + 1
			if c.StopOnFirst {
				break
			}
		}
	}
	return res, nil
}

// FailureRate reports the fraction of runs that ended in unhandled
// failure.
func (r *Result) FailureRate() float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	return float64(r.Tally.Failures()) / float64(len(r.Outcomes))
}

// ByClass returns the outcomes with the given classification.
func (r *Result) ByClass(c fault.Classification) []fault.Outcome {
	var out []fault.Outcome
	for _, o := range r.Outcomes {
		if o.Class == c {
			out = append(out, o)
		}
	}
	return out
}
