package stressor

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sim"
)

// RunFunc executes one complete fault-injected simulation for the
// given scenario — building a fresh virtual prototype, injecting,
// running and classifying — and returns the outcome. Campaigns stay
// agnostic of what the prototype is; the CAPS and ECU experiments
// supply their own RunFuncs. A RunFunc handed to a parallel campaign
// (Workers != 0) must be safe for concurrent invocation: each call
// should build its own kernel and system, as the CAPS runner does.
type RunFunc func(sc fault.Scenario) fault.Outcome

// WorkersAuto asks Execute for one worker per available CPU.
const WorkersAuto = par.Auto

// JournalSink receives one entry per completed run. *journal.Writer
// implements it; wrappers compose around it — the daemon's run store
// and the fault-injecting test writers both do.
type JournalSink interface {
	Append(journal.Entry) error
}

// Campaign repeats stress tests over a scenario list: the quantitative
// evaluation loop of Sec. 3.4.
type Campaign struct {
	// Name labels the campaign in reports and metrics.
	Name string
	// Run executes one scenario.
	Run RunFunc
	// StopOnFirst aborts the campaign at the first unhandled failure —
	// the "how many runs until the critical effect is found" metric of
	// experiment E4. Under parallel execution the campaign still stops
	// at the earliest-indexed failure, exactly as sequential execution
	// would.
	StopOnFirst bool
	// Workers selects the execution mode: 0 runs scenarios
	// sequentially on the calling goroutine, N > 0 fans them out to a
	// pool of N goroutines, and WorkersAuto sizes the pool to
	// GOMAXPROCS. Scenario runs are independent (each builds a fresh
	// prototype), so the Result is identical for every setting.
	Workers int
	// Dedup collapses scenarios whose fault content is identical —
	// same target site, model, class, timing and parameters, ignoring
	// only the scenario/descriptor names — into one simulation run
	// whose outcome is fanned back to every duplicate index.
	// Result.DedupSavedRuns reports the saving. Requires the RunFunc
	// to be deterministic in the fault content (true for the CAPS and
	// ECU runners); an outcome that embeds the scenario ID in an error
	// detail would leak the representative's ID to its duplicates.
	Dedup bool
	// Checkpoints enables golden-run checkpointing: each worker's
	// scenario stream is sorted by injection time (unless StopOnFirst
	// demands index order), the golden prefix is simulated once per
	// worker session, snapshotted at each distinct injection instant,
	// and restored instead of rebuilt for every scenario at that
	// instant. Scenarios the Checkpointer declines (ForkTime ok=false)
	// transparently fall back to the plain RunFunc. Results are
	// byte-identical to a non-checkpointed Execute.
	Checkpoints bool
	// Checkpointer supplies golden-run sessions; required when
	// Checkpoints is set. The CAPS and ECU runners implement it.
	Checkpointer Checkpointer
	// CheckpointTree generalizes Checkpoints into a checkpoint tree:
	// each worker session retains an LRU-budgeted set of golden-prefix
	// snapshots and establishes every scenario from the deepest
	// retained node at or before its fork instead of extending a
	// single checkpoint, and the dispatch stream is further grouped by
	// (injection target, fault class) so scenario families share
	// prefixes. Requires Checkpoints and a Checkpointer implementing
	// TreeCheckpointer. Results are byte-identical to a plain
	// checkpointed Execute.
	CheckpointTree bool
	// EarlyExit enables convergence early-exit inside tree sessions:
	// the golden trajectory is hashed at HashStride intervals, and an
	// injected run whose state digest returns to the golden trajectory
	// (after its last scheduled fault action) terminates immediately
	// with the golden-equal classification instead of simulating to
	// the horizon. Requires Checkpoints and a TreeCheckpointer;
	// classifications are byte-identical to full-horizon runs.
	EarlyExit bool
	// HashStride is the EarlyExit trajectory hashing interval; zero
	// lets the runner derive one from its horizon (typically
	// horizon/16). Meaningful only with EarlyExit.
	HashStride sim.Time
	// Shard restricts execution to one partition of the (post-Dedup)
	// unique-run positions: position u runs iff u mod Count == Index.
	// The zero value runs everything. A sharded Execute returns a
	// partial Result holding only this shard's outcomes (in scenario
	// order); Merge folds a complete shard set back into the result
	// the unsharded run would have produced, byte for byte.
	Shard Shard
	// Journal, when non-nil, records every completed run as one
	// append-only line so the campaign survives interruption. Under
	// Dedup only representative runs are journaled. A journal append
	// failure aborts the campaign with an error — better to stop than
	// to run scenarios that can never be resumed or merged. Callers
	// assigning a concrete pointer must take care not to store a typed
	// nil (the engine only checks Journal against the nil interface).
	Journal JournalSink
	// Resume, when non-nil, is a previously recorded journal for this
	// exact campaign (same name, shard, universe — validated before
	// any run starts). Journaled scenarios are not re-executed; their
	// recorded outcomes are replayed into the Result, which is
	// byte-identical to an uninterrupted run. The replay stamps each
	// outcome's Scenario from the universe, so RunFuncs must do the
	// same (the CAPS/ECU runners do) — the constraint Dedup already
	// imposes.
	Resume *journal.Journal
	// ScenarioTimeout, when positive, bounds each run's wall-clock
	// time. A run exceeding it is recorded as fault.Timeout and the
	// campaign moves on; the runaway RunFunc keeps its goroutine (and
	// any kernel slot it holds) so the worker continues on a fresh
	// slot, and its eventual outcome is discarded. Timeout is not a
	// failure: StopOnFirst does not trigger on it.
	ScenarioTimeout time.Duration
	// Halt, when non-nil, is polled with the number of runs completed
	// so far before each dispatch; returning true stops the campaign
	// gracefully (in-flight runs finish and are journaled, the rest
	// stay unexecuted). This is the SIGINT/deadline hook: a halted,
	// journaled campaign resumes exactly where it stopped.
	Halt func(completed int) bool

	// Metrics, when non-nil, receives campaign telemetry: a
	// campaign.scenario_duration_ns histogram, campaign.outcomes
	// counters per classification, campaign.runs / elapsed_ns /
	// panic_recoveries counters, per-worker campaign.worker_busy_ns
	// and a campaign.worker_utilization gauge — all labeled with the
	// campaign name. The Result itself is byte-identical with or
	// without Metrics attached.
	Metrics *obs.Registry
	// Trace, when non-nil, records one span per scenario run on the
	// executing worker's trace row (Chrome trace-event timeline).
	Trace *obs.TraceRecorder
	// Flight, when non-nil, receives low-volume operational marks —
	// scenario timeouts, recovered panics, slow-scenario warnings, halt
	// and journal failures — into the daemon's flight-recorder ring.
	// Unlike Metrics it records *events*, not aggregates, so a wedged
	// campaign leaves a readable last-moments trail.
	Flight *obs.FlightRecorder
	// SlowScenario, when positive, marks any single run whose wall
	// clock meets or exceeds it in the flight recorder and the log —
	// the "which scenario is dragging this campaign" probe.
	SlowScenario time.Duration
	// Log, when non-nil, receives structured engine events (start,
	// finish, halt, timeouts, panics, journal failures) via log/slog.
	// The Result is identical with or without it.
	Log *slog.Logger
	// Progress, when non-nil, receives rate-limited live updates
	// (completed/total, failures, rate, ETA) while the campaign runs.
	Progress obs.ProgressFunc
	// ProgressInterval overrides the update rate limit (0 selects
	// obs.DefaultProgressInterval, negative disables limiting).
	ProgressInterval time.Duration
}

// Result is a finished campaign.
type Result struct {
	Name     string
	Outcomes []fault.Outcome
	Tally    fault.Tally
	// RunsToFirstFailure is the 1-based index of the first unhandled
	// failure, or 0 when none occurred.
	RunsToFirstFailure int
	// PanicRecoveries counts runs whose RunFunc panicked and was
	// recovered. Those runs tally as detected-safe (the campaign
	// reached a safe state by construction), but an infrastructure
	// crash is not a genuine detection — a non-zero count flags the
	// campaign setup, not the DUT.
	PanicRecoveries int
	// DedupSavedRuns counts scenarios that were not simulated because
	// Dedup folded them into an earlier identical run (0 when Dedup is
	// off or every scenario was unique).
	DedupSavedRuns int
}

// campaignObs carries the per-Execute instrumentation state. A nil
// *campaignObs is valid and free: uninstrumented campaigns skip all
// timing calls.
type campaignObs struct {
	meter  *obs.ProgressMeter
	trace  *obs.TraceRecorder
	flight *obs.FlightRecorder
	log    *slog.Logger
	dur    *obs.Histogram
	// completed counts runs live (incremented as each run finishes) so
	// a mid-flight /metrics scrape sees the campaign moving — unlike
	// the end-of-run counters publish folds in after Execute returns.
	completed *obs.Counter
	slow      time.Duration
	// busy accumulates per-worker run time; each worker touches only
	// its own slot and the slice is read after the pool joins.
	busy []time.Duration
}

// newObs builds the instrumentation state, or nil when the campaign
// carries no observability hooks.
func (c *Campaign) newObs(total, workers int) *campaignObs {
	if c.Metrics == nil && c.Trace == nil && c.Progress == nil &&
		c.Flight == nil && c.Log == nil {
		return nil
	}
	o := &campaignObs{
		meter:  obs.NewProgressMeter(c.Name, total, c.ProgressInterval, c.Progress),
		trace:  c.Trace,
		flight: c.Flight,
		log:    c.Log,
		slow:   c.SlowScenario,
	}
	if c.Metrics != nil {
		o.dur = c.Metrics.Histogram("campaign.scenario_duration_ns", obs.L("campaign", c.Name))
		o.completed = c.Metrics.Counter("campaign.completed", obs.L("campaign", c.Name))
		if workers == 0 {
			workers = 1
		}
		o.busy = make([]time.Duration, workers)
	}
	return o
}

// runOne executes one scenario through the instrumentation shell:
// span, duration histogram, per-worker busy time, progress step. The
// do closure performs the actual run (plain safeRun or a checkpoint
// session's safeSessionRun) and reports (outcome, panicked).
func (c *Campaign) runOne(o *campaignObs, sc fault.Scenario, worker int, do func() (fault.Outcome, bool)) (fault.Outcome, bool, bool) {
	if o == nil {
		return c.execRun(sc, do)
	}
	sp := o.trace.Begin("campaign", sc.ID, worker)
	var t0 time.Time
	timed := o.dur != nil || o.busy != nil || o.slow > 0
	if timed {
		t0 = time.Now()
	}
	out, panicked, timedOut := c.execRun(sc, do)
	if timed {
		d := time.Since(t0)
		if o.dur != nil {
			o.dur.Observe(uint64(d))
		}
		if o.busy != nil {
			o.busy[worker] += d
		}
		if o.slow > 0 && d >= o.slow && !timedOut {
			o.flight.Recordf("scenario.slow", c.Name, "%s took %v (budget %v)", sc.ID, d.Round(time.Millisecond), o.slow)
			if o.log != nil {
				o.log.Warn("slow scenario", "campaign", c.Name, "scenario", sc.ID, "took", d, "budget", o.slow)
			}
		}
	}
	switch {
	case timedOut:
		o.flight.Recordf("scenario.timeout", c.Name, "%s exceeded %v", sc.ID, c.ScenarioTimeout)
		if o.log != nil {
			o.log.Warn("scenario timeout", "campaign", c.Name, "scenario", sc.ID, "budget", c.ScenarioTimeout)
		}
	case panicked:
		o.flight.Recordf("panic.recovered", c.Name, "scenario %s: %s", sc.ID, out.Detail)
		if o.log != nil {
			o.log.Warn("panic recovered", "campaign", c.Name, "scenario", sc.ID, "detail", out.Detail)
		}
	}
	if o.completed != nil {
		o.completed.Inc()
	}
	sp.Arg("class", out.Class.String()).End()
	o.meter.Step(out.Class.IsFailure())
	return out, panicked, timedOut
}

// execRun applies the wall-clock budget around safeRun. Without a
// budget it is a plain call; with one, the run proceeds on its own
// goroutine and an overrun is classified fault.Timeout while the
// campaign moves on. The abandoned goroutine finishes (or hangs) in
// the background; its late outcome is discarded, and any pooled slot
// it holds stays with it — the pool builds a fresh slot for the next
// run, so a hung simulation can never wedge a worker.
func (c *Campaign) execRun(sc fault.Scenario, do func() (fault.Outcome, bool)) (fault.Outcome, bool, bool) {
	if c.ScenarioTimeout <= 0 {
		out, panicked := do()
		return out, panicked, false
	}
	type runResult struct {
		out      fault.Outcome
		panicked bool
	}
	ch := make(chan runResult, 1)
	go func() {
		out, panicked := do()
		ch <- runResult{out, panicked}
	}()
	t := time.NewTimer(c.ScenarioTimeout)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.out, r.panicked, false
	case <-t.C:
		return fault.Outcome{
			Scenario: sc,
			Class:    fault.Timeout,
			Detail:   fmt.Sprintf("scenario exceeded wall-clock budget %v", c.ScenarioTimeout),
		}, false, true
	}
}

// Execute runs every scenario and tallies classifications. The whole
// list is validated up front, before any (expensive) run starts, so a
// malformed scenario can never discard completed work. Outcomes keep
// scenario order regardless of Workers, and attaching Metrics, Trace
// or Progress never changes the Result. Sharding, journaling, resume
// and Halt compose with all of it: a complete shard set Merges — and
// an interrupted campaign resumes — into the exact bytes one
// uninterrupted unsharded Execute would have produced.
func (c *Campaign) Execute(scenarios []fault.Scenario) (*Result, error) {
	for _, sc := range scenarios {
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("campaign %s: %w", c.Name, err)
		}
	}
	if err := c.Shard.validate(); err != nil {
		return nil, fmt.Errorf("campaign %s: %w", c.Name, err)
	}
	if c.Checkpoints && c.Checkpointer == nil {
		return nil, fmt.Errorf("campaign %s: Checkpoints set without a Checkpointer", c.Name)
	}
	if (c.CheckpointTree || c.EarlyExit) && !c.Checkpoints {
		return nil, fmt.Errorf("campaign %s: CheckpointTree/EarlyExit require Checkpoints", c.Name)
	}
	if c.CheckpointTree || c.EarlyExit {
		if _, ok := c.Checkpointer.(TreeCheckpointer); !ok {
			return nil, fmt.Errorf("campaign %s: Checkpointer %T does not implement TreeCheckpointer", c.Name, c.Checkpointer)
		}
	}
	if c.HashStride > 0 && !c.EarlyExit {
		return nil, fmt.Errorf("campaign %s: HashStride set without EarlyExit", c.Name)
	}
	workers := par.Resolve(c.Workers)

	// Dedup plan: run only the first occurrence of each distinct fault
	// content, then fan outcomes back out to the duplicate indices.
	// This happens BEFORE shard partition and resume replay, so every
	// shard computes the identical unique-run list and journals refer
	// to stable representative indices.
	run := scenarios
	var uniq, rep []int
	if c.Dedup {
		uniq, rep = dedupPlan(scenarios)
		if len(uniq) < len(scenarios) {
			run = make([]fault.Scenario, len(uniq))
			for u, idx := range uniq {
				run[u] = scenarios[idx]
			}
		} else {
			uniq, rep = nil, nil
		}
	}
	// origIdx maps a unique-run position back to its scenario index in
	// the full universe — the index space journals are keyed by.
	origIdx := func(u int) int {
		if uniq != nil {
			return uniq[u]
		}
		return u
	}

	resumed, err := c.resumeEntries(scenarios, rep)
	if err != nil {
		return nil, err
	}

	e := &campaignExec{
		c: c, run: run, origIdx: origIdx,
		outs:      make([]fault.Outcome, len(run)),
		ran:       make([]bool, len(run)),
		panicked:  make([]bool, len(run)),
		firstFail: len(run),
	}
	// Partition and replay: walk the unique-run positions once,
	// keeping only this shard's share and skipping what the journal
	// already recorded. What remains is the todo list.
	var todo []int
	for u := range run {
		if !c.Shard.owns(u) {
			continue
		}
		if ent, ok := resumed[origIdx(u)]; ok {
			cls, _ := fault.ParseClassification(ent.Class)
			e.outs[u] = fault.Outcome{Scenario: run[u], Class: cls, Detail: ent.Detail}
			e.ran[u] = true
			e.panicked[u] = ent.Panicked
			e.resumedSkips++
			if c.StopOnFirst && cls.IsFailure() && u < e.firstFail {
				e.firstFail = u
			}
			continue
		}
		todo = append(todo, u)
	}

	if c.Checkpoints {
		e.forks = make([]sim.Time, len(run))
		e.forkOK = make([]bool, len(run))
		for _, u := range todo {
			e.forks[u], e.forkOK[u] = c.Checkpointer.ForkTime(run[u])
		}
		// Sort the todo stream by injection time so each worker session
		// establishes a golden prefix once per distinct instant and
		// extends it monotonically. Results stay byte-identical because
		// outcomes, journal entries and Merge are all keyed by scenario
		// index, not dispatch order. StopOnFirst keeps index order: it
		// must execute exactly the prefix the sequential loop would.
		if !c.StopOnFirst {
			// Under CheckpointTree the stream is further grouped by the
			// first fault's (target, class) so scenario families — same
			// instant, same site — dispatch back to back and fork from
			// the same retained node while it is hottest in the LRU.
			key := func(u int) (string, fault.Class) {
				if len(run[u].Faults) == 0 {
					return "", 0
				}
				d := run[u].Faults[0]
				return d.Target, d.Class
			}
			sort.SliceStable(todo, func(i, j int) bool {
				ui, uj := todo[i], todo[j]
				if e.forks[ui] != e.forks[uj] {
					return e.forks[ui] < e.forks[uj]
				}
				if c.CheckpointTree {
					ti, ci := key(ui)
					tj, cj := key(uj)
					if ti != tj {
						return ti < tj
					}
					if ci != cj {
						return ci < cj
					}
				}
				return ui < uj
			})
		}
	}

	e.obs = c.newObs(len(todo), workers)
	if c.Log != nil {
		c.Log.Info("campaign start", "campaign", c.Name,
			"scenarios", len(scenarios), "todo", len(todo),
			"workers", workers, "resumed", e.resumedSkips)
	}
	start := time.Now()
	if workers == 0 {
		e.seq(todo)
	} else {
		e.par(todo, workers)
	}
	if e.journalErr != nil {
		c.Flight.Recordf("journal.error", c.Name, "%v", e.journalErr)
		if c.Log != nil {
			c.Log.Error("journal append failed", "campaign", c.Name, "err", e.journalErr)
		}
		return nil, fmt.Errorf("campaign %s: %w", c.Name, e.journalErr)
	}
	outs, ran, panicked := e.outs, e.ran, e.panicked
	if uniq != nil {
		outs, ran, panicked = fanOut(scenarios, uniq, rep, outs, ran, panicked)
	}
	res := c.assemble(scenarios, outs, ran, panicked)
	if uniq != nil {
		res.DedupSavedRuns = len(scenarios) - len(uniq)
	}
	elapsed := time.Since(start)
	if e.halted {
		c.Flight.Recordf("campaign.halt", c.Name, "halted after %d runs", e.completed)
		if c.Log != nil {
			c.Log.Info("campaign halted", "campaign", c.Name, "completed", e.completed)
		}
	} else if c.Log != nil {
		c.Log.Info("campaign done", "campaign", c.Name,
			"runs", len(res.Outcomes), "failures", res.Tally.Failures(),
			"panics", res.PanicRecoveries, "elapsed", elapsed)
	}
	c.publish(e, res, elapsed)
	return res, nil
}

// resumeEntries validates c.Resume against this exact campaign —
// name, shard layout, universe fingerprint, per-entry scenario IDs —
// and indexes its entries by scenario index. Any mismatch is a hard
// error before the first run: a stale or foreign journal must never
// silently poison a campaign.
func (c *Campaign) resumeEntries(scenarios []fault.Scenario, rep []int) (map[int]journal.Entry, error) {
	if c.Resume == nil {
		return nil, nil
	}
	h := c.Resume.Header
	shards := c.Shard.Count
	if shards < 1 {
		shards = 1
	}
	switch {
	case h.Campaign != c.Name:
		return nil, fmt.Errorf("campaign %s: resume journal belongs to campaign %q", c.Name, h.Campaign)
	case h.Shards != shards || h.Shard != c.Shard.Index:
		return nil, fmt.Errorf("campaign %s: resume journal is shard %d/%d, campaign is %s", c.Name, h.Shard, h.Shards, c.Shard)
	case h.Total != len(scenarios):
		return nil, fmt.Errorf("campaign %s: resume journal covers %d scenarios, universe has %d", c.Name, h.Total, len(scenarios))
	case h.Universe != UniverseHash(scenarios):
		return nil, fmt.Errorf("campaign %s: resume journal universe %s does not match %s", c.Name, h.Universe, UniverseHash(scenarios))
	}
	m := make(map[int]journal.Entry, len(c.Resume.Entries))
	for _, ent := range c.Resume.Entries {
		if scenarios[ent.Index].ID != ent.ID {
			return nil, fmt.Errorf("campaign %s: journal entry %d is scenario %q, universe has %q", c.Name, ent.Index, ent.ID, scenarios[ent.Index].ID)
		}
		if _, ok := fault.ParseClassification(ent.Class); !ok {
			return nil, fmt.Errorf("campaign %s: journal entry %d has unknown class %q", c.Name, ent.Index, ent.Class)
		}
		if rep != nil && rep[ent.Index] != ent.Index {
			return nil, fmt.Errorf("campaign %s: journal entry %d is not a dedup representative (journal written without -dedup?)", c.Name, ent.Index)
		}
		if prev, ok := m[ent.Index]; ok && prev != ent {
			return nil, fmt.Errorf("campaign %s: journal records scenario %d twice with different outcomes", c.Name, ent.Index)
		}
		m[ent.Index] = ent
	}
	return m, nil
}

// campaignExec is the mutable state of one Execute: the shared
// outcome slots, the StopOnFirst cutoff, and the journaling/halt/
// timeout bookkeeping. Workers serialize on mu.
type campaignExec struct {
	c       *Campaign
	run     []fault.Scenario
	origIdx func(int) int
	obs     *campaignObs

	outs     []fault.Outcome
	ran      []bool
	panicked []bool

	// forks/forkOK (set only when Checkpoints) hold each unique-run
	// position's injection fork time and eligibility.
	forks  []sim.Time
	forkOK []bool

	mu           sync.Mutex
	firstFail    int // lowest failure position seen (len(run) = none)
	completed    int // runs executed this Execute (excludes resumed)
	timeouts     int
	resumedSkips int
	appends      int
	halted       bool
	journalErr   error
}

// record stores one finished run and journals it. The returned flag
// asks the parallel dispatcher to cancel (new StopOnFirst cutoff or a
// journal failure).
func (e *campaignExec) record(u int, out fault.Outcome, panicked, timedOut bool) (stop bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.outs[u], e.ran[u], e.panicked[u] = out, true, panicked
	e.completed++
	if timedOut {
		e.timeouts++
	}
	if e.c.Journal != nil && e.journalErr == nil {
		err := e.c.Journal.Append(journal.Entry{
			Index: e.origIdx(u), ID: e.run[u].ID,
			Class: out.Class.String(), Detail: out.Detail, Panicked: panicked,
		})
		if err != nil {
			e.journalErr = err
			stop = true
		} else {
			e.appends++
		}
	}
	if e.c.StopOnFirst && out.Class.IsFailure() && u < e.firstFail {
		e.firstFail = u
		stop = true
	}
	return stop
}

// seq is the classic single-goroutine loop over the todo positions
// (ascending), honoring Halt, the StopOnFirst cutoff (possibly seeded
// by a resumed failure) and journal failures.
func (e *campaignExec) seq(todo []int) {
	h := e.newHolder()
	defer h.close()
	for _, u := range todo {
		e.mu.Lock()
		stop := e.journalErr != nil || (e.c.StopOnFirst && u > e.firstFail)
		done := e.completed
		e.mu.Unlock()
		if stop {
			break
		}
		if e.c.Halt != nil && e.c.Halt(done) {
			e.halted = true
			break
		}
		out, p, to := e.dispatchRun(u, 0, h)
		e.record(u, out, p, to)
	}
}

// par fans the todo positions out to a worker pool. Dispatch is in
// order; under StopOnFirst the first failure cancels dispatch and
// workers discard queued positions past the earliest failure seen, so
// every run the sequential loop would have executed still executes
// and nothing beyond the cutoff survives into the result.
func (e *campaignExec) par(todo []int, workers int) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := e.newHolder()
			defer h.close()
			for u := range indices {
				if e.c.StopOnFirst {
					e.mu.Lock()
					skip := u > e.firstFail
					e.mu.Unlock()
					if skip {
						continue
					}
				}
				out, p, to := e.dispatchRun(u, w, h)
				if e.record(u, out, p, to) {
					cancel()
				}
			}
		}(w)
	}
dispatch:
	for _, u := range todo {
		if e.c.Halt != nil {
			e.mu.Lock()
			done := e.completed
			e.mu.Unlock()
			if e.c.Halt(done) {
				e.halted = true
				break dispatch
			}
		}
		select {
		case <-ctx.Done():
			break dispatch
		case indices <- u:
		}
	}
	close(indices)
	wg.Wait()
}

// descKey serializes every descriptor field except the name — the
// fault content that determines a deterministic run's outcome.
func descKey(d fault.Descriptor) string {
	return fmt.Sprintf("%v|%v|%v|%s|%d|%d|%g|%d|%d|%d|%g",
		d.Model, d.Class, d.Domain, d.Target, d.Bit, d.Address, d.Param,
		d.Start, d.Duration, d.Period, d.Rate)
}

// dedupPlan partitions scenarios by fault content: uniq lists the
// first-occurrence indices in original order, rep maps every index to
// its representative (itself for uniques).
func dedupPlan(scenarios []fault.Scenario) (uniq, rep []int) {
	rep = make([]int, len(scenarios))
	seen := make(map[string]int, len(scenarios))
	for i, sc := range scenarios {
		key := scenarioContentKey(sc)
		if first, ok := seen[key]; ok {
			rep[i] = first
			continue
		}
		seen[key] = i
		rep[i] = i
		uniq = append(uniq, i)
	}
	return uniq, rep
}

// fanOut expands per-unique run results back to the full scenario
// list. Each duplicate inherits its representative's outcome with its
// own Scenario stamped in; representatives ordered after a StopOnFirst
// cutoff never ran, so their duplicates stay un-ran too.
func fanOut(scenarios []fault.Scenario, uniq, rep []int, outs []fault.Outcome, ran, panicked []bool) ([]fault.Outcome, []bool, []bool) {
	pos := make(map[int]int, len(uniq)) // original index of a rep -> slot in outs
	for u, idx := range uniq {
		pos[idx] = u
	}
	fullOuts := make([]fault.Outcome, len(scenarios))
	fullRan := make([]bool, len(scenarios))
	fullPanicked := make([]bool, len(scenarios))
	for i := range scenarios {
		u := pos[rep[i]]
		if !ran[u] {
			continue
		}
		out := outs[u]
		out.Scenario = scenarios[i]
		fullOuts[i] = out
		fullRan[i] = true
		fullPanicked[i] = panicked[u]
	}
	return fullOuts, fullRan, fullPanicked
}

// publish folds the finished result into the registry. Counters are
// derived from the assembled Result (not the raw runs), so the
// recorded outcome counts are deterministic across worker counts; the
// journal/resume/timeout counters reflect this Execute's actual work.
func (c *Campaign) publish(e *campaignExec, res *Result, elapsed time.Duration) {
	o := e.obs
	if o != nil {
		o.meter.Finish()
	}
	if c.Metrics == nil {
		return
	}
	reg := c.Metrics
	name := obs.L("campaign", c.Name)
	if c.Journal != nil {
		reg.Counter("campaign.journal_appends", name).Add(uint64(e.appends))
	}
	if c.Resume != nil {
		reg.Counter("campaign.resumed_skips", name).Add(uint64(e.resumedSkips))
	}
	if c.ScenarioTimeout > 0 {
		reg.Counter("campaign.timeouts", name).Add(uint64(e.timeouts))
	}
	for class, n := range res.Tally {
		reg.Counter("campaign.outcomes", name, obs.L("class", class.String())).Add(uint64(n))
	}
	reg.Counter("campaign.runs", name).Add(uint64(len(res.Outcomes)))
	reg.Counter("campaign.elapsed_ns", name).Add(uint64(elapsed.Nanoseconds()))
	if res.PanicRecoveries > 0 {
		reg.Counter("campaign.panic_recoveries", name).Add(uint64(res.PanicRecoveries))
	}
	if res.DedupSavedRuns > 0 {
		reg.Counter("campaign.dedup_saved_runs", name).Add(uint64(res.DedupSavedRuns))
	}
	var total time.Duration
	for w, b := range o.busy {
		reg.Counter("campaign.worker_busy_ns", name, obs.L("worker", strconv.Itoa(w))).Add(uint64(b))
		total += b
	}
	if elapsed > 0 && len(o.busy) > 0 {
		util := total.Seconds() / (elapsed.Seconds() * float64(len(o.busy)))
		reg.Gauge("campaign.worker_utilization", name).Set(util)
	}
}

// safeRun invokes the RunFunc, converting a panic into a
// detected-safe outcome so one crashing scenario cannot take down the
// whole campaign. The second return reports whether a panic was
// recovered, feeding Result.PanicRecoveries.
func (c *Campaign) safeRun(sc fault.Scenario) (o fault.Outcome, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			o = fault.Outcome{
				Scenario: sc,
				Class:    fault.DetectedSafe,
				Detail:   fmt.Sprintf("campaign panic recovered: %v", r),
			}
		}
	}()
	return c.Run(sc), false
}

// safeSessionRun is safeRun for a checkpoint-session run, with the
// identical panic-to-detected-safe conversion (and Detail format) so
// a panicking scenario yields the same outcome on either path.
func (c *Campaign) safeSessionRun(sess CheckpointSession, sc fault.Scenario, fork sim.Time) (o fault.Outcome, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			o = fault.Outcome{
				Scenario: sc,
				Class:    fault.DetectedSafe,
				Detail:   fmt.Sprintf("campaign panic recovered: %v", r),
			}
		}
	}()
	return sess.Run(sc, fork), false
}

// assemble folds per-index outcomes into a Result in scenario order,
// reproducing the sequential semantics bit for bit: the tally and
// outcome list stop at the first failure when StopOnFirst is set,
// and extra outcomes a parallel run completed past that point are
// discarded. PanicRecoveries counts only runs included in the result,
// so it too is identical across worker counts. Positions that never
// ran — scenarios owned by other shards, or left behind by a Halt —
// are simply skipped: a sharded or interrupted Result is the ordered
// subsequence of completed outcomes.
func (c *Campaign) assemble(scenarios []fault.Scenario, outs []fault.Outcome, ran, panicked []bool) *Result {
	res := &Result{Name: c.Name, Tally: make(fault.Tally)}
	for i := range scenarios {
		if !ran[i] {
			continue
		}
		o := outs[i]
		res.Outcomes = append(res.Outcomes, o)
		res.Tally.Add(o)
		if panicked[i] {
			res.PanicRecoveries++
		}
		if o.Class.IsFailure() && res.RunsToFirstFailure == 0 {
			res.RunsToFirstFailure = i + 1
			if c.StopOnFirst {
				break
			}
		}
	}
	return res
}

// FailureRate reports the fraction of runs that ended in unhandled
// failure.
func (r *Result) FailureRate() float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	return float64(r.Tally.Failures()) / float64(len(r.Outcomes))
}

// FirstFailure returns the earliest unhandled failure in the result,
// if any. Unlike indexing Outcomes with RunsToFirstFailure (which is
// a position in the full scenario order), this is also correct for
// sharded or interrupted results, whose outcome list is a
// subsequence of the universe.
func (r *Result) FirstFailure() (fault.Outcome, bool) {
	for _, o := range r.Outcomes {
		if o.Class.IsFailure() {
			return o, true
		}
	}
	return fault.Outcome{}, false
}

// ByClass returns the outcomes with the given classification.
func (r *Result) ByClass(c fault.Classification) []fault.Outcome {
	var out []fault.Outcome
	for _, o := range r.Outcomes {
		if o.Class == c {
			out = append(out, o)
		}
	}
	return out
}
