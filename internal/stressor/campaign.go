package stressor

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/par"
)

// RunFunc executes one complete fault-injected simulation for the
// given scenario — building a fresh virtual prototype, injecting,
// running and classifying — and returns the outcome. Campaigns stay
// agnostic of what the prototype is; the CAPS and ECU experiments
// supply their own RunFuncs. A RunFunc handed to a parallel campaign
// (Workers != 0) must be safe for concurrent invocation: each call
// should build its own kernel and system, as the CAPS runner does.
type RunFunc func(sc fault.Scenario) fault.Outcome

// WorkersAuto asks Execute for one worker per available CPU.
const WorkersAuto = par.Auto

// Campaign repeats stress tests over a scenario list: the quantitative
// evaluation loop of Sec. 3.4.
type Campaign struct {
	// Name labels the campaign in reports.
	Name string
	// Run executes one scenario.
	Run RunFunc
	// StopOnFirst aborts the campaign at the first unhandled failure —
	// the "how many runs until the critical effect is found" metric of
	// experiment E4. Under parallel execution the campaign still stops
	// at the earliest-indexed failure, exactly as sequential execution
	// would.
	StopOnFirst bool
	// Workers selects the execution mode: 0 runs scenarios
	// sequentially on the calling goroutine, N > 0 fans them out to a
	// pool of N goroutines, and WorkersAuto sizes the pool to
	// GOMAXPROCS. Scenario runs are independent (each builds a fresh
	// prototype), so the Result is identical for every setting.
	Workers int
}

// Result is a finished campaign.
type Result struct {
	Name     string
	Outcomes []fault.Outcome
	Tally    fault.Tally
	// RunsToFirstFailure is the 1-based index of the first unhandled
	// failure, or 0 when none occurred.
	RunsToFirstFailure int
}

// Execute runs every scenario and tallies classifications. The whole
// list is validated up front, before any (expensive) run starts, so a
// malformed scenario can never discard completed work. Outcomes keep
// scenario order regardless of Workers.
func (c *Campaign) Execute(scenarios []fault.Scenario) (*Result, error) {
	for _, sc := range scenarios {
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("campaign %s: %w", c.Name, err)
		}
	}
	var outs []fault.Outcome
	var ran []bool
	if workers := par.Resolve(c.Workers); workers == 0 {
		outs, ran = c.runSequential(scenarios)
	} else {
		outs, ran = c.runParallel(scenarios, workers)
	}
	return c.assemble(scenarios, outs, ran), nil
}

// runSequential is the classic single-goroutine loop; it stops early
// after the first failure when StopOnFirst is set.
func (c *Campaign) runSequential(scenarios []fault.Scenario) ([]fault.Outcome, []bool) {
	outs := make([]fault.Outcome, len(scenarios))
	ran := make([]bool, len(scenarios))
	for i, sc := range scenarios {
		outs[i] = c.safeRun(sc)
		ran[i] = true
		if c.StopOnFirst && outs[i].Class.IsFailure() {
			break
		}
	}
	return outs, ran
}

// runParallel fans scenarios out to a worker pool. Indices are
// dispatched in order; under StopOnFirst, the first failure cancels
// dispatch and workers discard any queued scenario ordered after the
// earliest failure seen so far, so every scenario the sequential loop
// would have run still runs and nothing past the stop point survives
// into the result.
func (c *Campaign) runParallel(scenarios []fault.Scenario, workers int) ([]fault.Outcome, []bool) {
	outs := make([]fault.Outcome, len(scenarios))
	ran := make([]bool, len(scenarios))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	firstFail := len(scenarios) // lowest failure index seen so far

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				if c.StopOnFirst {
					mu.Lock()
					skip := i > firstFail
					mu.Unlock()
					if skip {
						continue
					}
				}
				o := c.safeRun(scenarios[i])
				mu.Lock()
				outs[i] = o
				ran[i] = true
				if c.StopOnFirst && o.Class.IsFailure() && i < firstFail {
					firstFail = i
					cancel()
				}
				mu.Unlock()
			}
		}()
	}
dispatch:
	for i := range scenarios {
		select {
		case <-ctx.Done():
			break dispatch
		case indices <- i:
		}
	}
	close(indices)
	wg.Wait()
	return outs, ran
}

// safeRun invokes the RunFunc, converting a panic into a
// detected-safe outcome so one crashing scenario cannot take down the
// whole campaign.
func (c *Campaign) safeRun(sc fault.Scenario) (o fault.Outcome) {
	defer func() {
		if r := recover(); r != nil {
			o = fault.Outcome{
				Scenario: sc,
				Class:    fault.DetectedSafe,
				Detail:   fmt.Sprintf("campaign panic recovered: %v", r),
			}
		}
	}()
	return c.Run(sc)
}

// assemble folds per-index outcomes into a Result in scenario order,
// reproducing the sequential semantics bit for bit: the tally and
// outcome list stop at the first failure when StopOnFirst is set,
// and extra outcomes a parallel run completed past that point are
// discarded.
func (c *Campaign) assemble(scenarios []fault.Scenario, outs []fault.Outcome, ran []bool) *Result {
	res := &Result{Name: c.Name, Tally: make(fault.Tally)}
	for i := range scenarios {
		if !ran[i] {
			break
		}
		o := outs[i]
		res.Outcomes = append(res.Outcomes, o)
		res.Tally.Add(o)
		if o.Class.IsFailure() && res.RunsToFirstFailure == 0 {
			res.RunsToFirstFailure = i + 1
			if c.StopOnFirst {
				break
			}
		}
	}
	return res
}

// FailureRate reports the fraction of runs that ended in unhandled
// failure.
func (r *Result) FailureRate() float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	return float64(r.Tally.Failures()) / float64(len(r.Outcomes))
}

// ByClass returns the outcomes with the given classification.
func (r *Result) ByClass(c fault.Classification) []fault.Outcome {
	var out []fault.Outcome
	for _, o := range r.Outcomes {
		if o.Class == c {
			out = append(out, o)
		}
	}
	return out
}
