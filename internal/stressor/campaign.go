package stressor

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/par"
)

// RunFunc executes one complete fault-injected simulation for the
// given scenario — building a fresh virtual prototype, injecting,
// running and classifying — and returns the outcome. Campaigns stay
// agnostic of what the prototype is; the CAPS and ECU experiments
// supply their own RunFuncs. A RunFunc handed to a parallel campaign
// (Workers != 0) must be safe for concurrent invocation: each call
// should build its own kernel and system, as the CAPS runner does.
type RunFunc func(sc fault.Scenario) fault.Outcome

// WorkersAuto asks Execute for one worker per available CPU.
const WorkersAuto = par.Auto

// Campaign repeats stress tests over a scenario list: the quantitative
// evaluation loop of Sec. 3.4.
type Campaign struct {
	// Name labels the campaign in reports and metrics.
	Name string
	// Run executes one scenario.
	Run RunFunc
	// StopOnFirst aborts the campaign at the first unhandled failure —
	// the "how many runs until the critical effect is found" metric of
	// experiment E4. Under parallel execution the campaign still stops
	// at the earliest-indexed failure, exactly as sequential execution
	// would.
	StopOnFirst bool
	// Workers selects the execution mode: 0 runs scenarios
	// sequentially on the calling goroutine, N > 0 fans them out to a
	// pool of N goroutines, and WorkersAuto sizes the pool to
	// GOMAXPROCS. Scenario runs are independent (each builds a fresh
	// prototype), so the Result is identical for every setting.
	Workers int
	// Dedup collapses scenarios whose fault content is identical —
	// same target site, model, class, timing and parameters, ignoring
	// only the scenario/descriptor names — into one simulation run
	// whose outcome is fanned back to every duplicate index.
	// Result.DedupSavedRuns reports the saving. Requires the RunFunc
	// to be deterministic in the fault content (true for the CAPS and
	// ECU runners); an outcome that embeds the scenario ID in an error
	// detail would leak the representative's ID to its duplicates.
	Dedup bool

	// Metrics, when non-nil, receives campaign telemetry: a
	// campaign.scenario_duration_ns histogram, campaign.outcomes
	// counters per classification, campaign.runs / elapsed_ns /
	// panic_recoveries counters, per-worker campaign.worker_busy_ns
	// and a campaign.worker_utilization gauge — all labeled with the
	// campaign name. The Result itself is byte-identical with or
	// without Metrics attached.
	Metrics *obs.Registry
	// Trace, when non-nil, records one span per scenario run on the
	// executing worker's trace row (Chrome trace-event timeline).
	Trace *obs.TraceRecorder
	// Progress, when non-nil, receives rate-limited live updates
	// (completed/total, failures, rate, ETA) while the campaign runs.
	Progress obs.ProgressFunc
	// ProgressInterval overrides the update rate limit (0 selects
	// obs.DefaultProgressInterval, negative disables limiting).
	ProgressInterval time.Duration
}

// Result is a finished campaign.
type Result struct {
	Name     string
	Outcomes []fault.Outcome
	Tally    fault.Tally
	// RunsToFirstFailure is the 1-based index of the first unhandled
	// failure, or 0 when none occurred.
	RunsToFirstFailure int
	// PanicRecoveries counts runs whose RunFunc panicked and was
	// recovered. Those runs tally as detected-safe (the campaign
	// reached a safe state by construction), but an infrastructure
	// crash is not a genuine detection — a non-zero count flags the
	// campaign setup, not the DUT.
	PanicRecoveries int
	// DedupSavedRuns counts scenarios that were not simulated because
	// Dedup folded them into an earlier identical run (0 when Dedup is
	// off or every scenario was unique).
	DedupSavedRuns int
}

// campaignObs carries the per-Execute instrumentation state. A nil
// *campaignObs is valid and free: uninstrumented campaigns skip all
// timing calls.
type campaignObs struct {
	meter *obs.ProgressMeter
	trace *obs.TraceRecorder
	dur   *obs.Histogram
	// busy accumulates per-worker run time; each worker touches only
	// its own slot and the slice is read after the pool joins.
	busy []time.Duration
}

// newObs builds the instrumentation state, or nil when the campaign
// carries no observability hooks.
func (c *Campaign) newObs(total, workers int) *campaignObs {
	if c.Metrics == nil && c.Trace == nil && c.Progress == nil {
		return nil
	}
	o := &campaignObs{
		meter: obs.NewProgressMeter(c.Name, total, c.ProgressInterval, c.Progress),
		trace: c.Trace,
	}
	if c.Metrics != nil {
		o.dur = c.Metrics.Histogram("campaign.scenario_duration_ns", obs.L("campaign", c.Name))
		if workers == 0 {
			workers = 1
		}
		o.busy = make([]time.Duration, workers)
	}
	return o
}

// runOne executes one scenario through the instrumentation shell:
// span, duration histogram, per-worker busy time, progress step.
func (c *Campaign) runOne(o *campaignObs, sc fault.Scenario, worker int) (fault.Outcome, bool) {
	if o == nil {
		return c.safeRun(sc)
	}
	sp := o.trace.Begin("campaign", sc.ID, worker)
	var t0 time.Time
	timed := o.dur != nil || o.busy != nil
	if timed {
		t0 = time.Now()
	}
	out, panicked := c.safeRun(sc)
	if timed {
		d := time.Since(t0)
		if o.dur != nil {
			o.dur.Observe(uint64(d))
		}
		if o.busy != nil {
			o.busy[worker] += d
		}
	}
	sp.Arg("class", out.Class.String()).End()
	o.meter.Step(out.Class.IsFailure())
	return out, panicked
}

// Execute runs every scenario and tallies classifications. The whole
// list is validated up front, before any (expensive) run starts, so a
// malformed scenario can never discard completed work. Outcomes keep
// scenario order regardless of Workers, and attaching Metrics, Trace
// or Progress never changes the Result.
func (c *Campaign) Execute(scenarios []fault.Scenario) (*Result, error) {
	for _, sc := range scenarios {
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("campaign %s: %w", c.Name, err)
		}
	}
	workers := par.Resolve(c.Workers)

	// Dedup plan: run only the first occurrence of each distinct fault
	// content, then fan outcomes back out to the duplicate indices.
	run := scenarios
	var uniq, rep []int
	if c.Dedup {
		uniq, rep = dedupPlan(scenarios)
		if len(uniq) < len(scenarios) {
			run = make([]fault.Scenario, len(uniq))
			for u, idx := range uniq {
				run[u] = scenarios[idx]
			}
		} else {
			uniq, rep = nil, nil
		}
	}

	o := c.newObs(len(run), workers)
	start := time.Now()
	var outs []fault.Outcome
	var ran, panicked []bool
	if workers == 0 {
		outs, ran, panicked = c.runSequential(run, o)
	} else {
		outs, ran, panicked = c.runParallel(run, workers, o)
	}
	if uniq != nil {
		outs, ran, panicked = fanOut(scenarios, uniq, rep, outs, ran, panicked)
	}
	res := c.assemble(scenarios, outs, ran, panicked)
	if uniq != nil {
		res.DedupSavedRuns = len(scenarios) - len(uniq)
	}
	c.publish(o, res, time.Since(start))
	return res, nil
}

// descKey serializes every descriptor field except the name — the
// fault content that determines a deterministic run's outcome.
func descKey(d fault.Descriptor) string {
	return fmt.Sprintf("%v|%v|%v|%s|%d|%d|%g|%d|%d|%d|%g",
		d.Model, d.Class, d.Domain, d.Target, d.Bit, d.Address, d.Param,
		d.Start, d.Duration, d.Period, d.Rate)
}

// dedupPlan partitions scenarios by fault content: uniq lists the
// first-occurrence indices in original order, rep maps every index to
// its representative (itself for uniques).
func dedupPlan(scenarios []fault.Scenario) (uniq, rep []int) {
	rep = make([]int, len(scenarios))
	seen := make(map[string]int, len(scenarios))
	for i, sc := range scenarios {
		key := ""
		for _, d := range sc.Faults {
			key += descKey(d) + ";"
		}
		if first, ok := seen[key]; ok {
			rep[i] = first
			continue
		}
		seen[key] = i
		rep[i] = i
		uniq = append(uniq, i)
	}
	return uniq, rep
}

// fanOut expands per-unique run results back to the full scenario
// list. Each duplicate inherits its representative's outcome with its
// own Scenario stamped in; representatives ordered after a StopOnFirst
// cutoff never ran, so their duplicates stay un-ran too.
func fanOut(scenarios []fault.Scenario, uniq, rep []int, outs []fault.Outcome, ran, panicked []bool) ([]fault.Outcome, []bool, []bool) {
	pos := make(map[int]int, len(uniq)) // original index of a rep -> slot in outs
	for u, idx := range uniq {
		pos[idx] = u
	}
	fullOuts := make([]fault.Outcome, len(scenarios))
	fullRan := make([]bool, len(scenarios))
	fullPanicked := make([]bool, len(scenarios))
	for i := range scenarios {
		u := pos[rep[i]]
		if !ran[u] {
			continue
		}
		out := outs[u]
		out.Scenario = scenarios[i]
		fullOuts[i] = out
		fullRan[i] = true
		fullPanicked[i] = panicked[u]
	}
	return fullOuts, fullRan, fullPanicked
}

// publish folds the finished result into the registry. Counters are
// derived from the assembled Result (not the raw runs), so the
// recorded outcome counts are deterministic across worker counts.
func (c *Campaign) publish(o *campaignObs, res *Result, elapsed time.Duration) {
	if o != nil {
		o.meter.Finish()
	}
	if c.Metrics == nil {
		return
	}
	reg := c.Metrics
	name := obs.L("campaign", c.Name)
	for class, n := range res.Tally {
		reg.Counter("campaign.outcomes", name, obs.L("class", class.String())).Add(uint64(n))
	}
	reg.Counter("campaign.runs", name).Add(uint64(len(res.Outcomes)))
	reg.Counter("campaign.elapsed_ns", name).Add(uint64(elapsed.Nanoseconds()))
	if res.PanicRecoveries > 0 {
		reg.Counter("campaign.panic_recoveries", name).Add(uint64(res.PanicRecoveries))
	}
	if res.DedupSavedRuns > 0 {
		reg.Counter("campaign.dedup_saved_runs", name).Add(uint64(res.DedupSavedRuns))
	}
	var total time.Duration
	for w, b := range o.busy {
		reg.Counter("campaign.worker_busy_ns", name, obs.L("worker", strconv.Itoa(w))).Add(uint64(b))
		total += b
	}
	if elapsed > 0 && len(o.busy) > 0 {
		util := total.Seconds() / (elapsed.Seconds() * float64(len(o.busy)))
		reg.Gauge("campaign.worker_utilization", name).Set(util)
	}
}

// runSequential is the classic single-goroutine loop; it stops early
// after the first failure when StopOnFirst is set.
func (c *Campaign) runSequential(scenarios []fault.Scenario, o *campaignObs) ([]fault.Outcome, []bool, []bool) {
	outs := make([]fault.Outcome, len(scenarios))
	ran := make([]bool, len(scenarios))
	panicked := make([]bool, len(scenarios))
	for i, sc := range scenarios {
		outs[i], panicked[i] = c.runOne(o, sc, 0)
		ran[i] = true
		if c.StopOnFirst && outs[i].Class.IsFailure() {
			break
		}
	}
	return outs, ran, panicked
}

// runParallel fans scenarios out to a worker pool. Indices are
// dispatched in order; under StopOnFirst, the first failure cancels
// dispatch and workers discard any queued scenario ordered after the
// earliest failure seen so far, so every scenario the sequential loop
// would have run still runs and nothing past the stop point survives
// into the result.
func (c *Campaign) runParallel(scenarios []fault.Scenario, workers int, o *campaignObs) ([]fault.Outcome, []bool, []bool) {
	outs := make([]fault.Outcome, len(scenarios))
	ran := make([]bool, len(scenarios))
	panicked := make([]bool, len(scenarios))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	firstFail := len(scenarios) // lowest failure index seen so far

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range indices {
				if c.StopOnFirst {
					mu.Lock()
					skip := i > firstFail
					mu.Unlock()
					if skip {
						continue
					}
				}
				out, p := c.runOne(o, scenarios[i], w)
				mu.Lock()
				outs[i] = out
				ran[i] = true
				panicked[i] = p
				if c.StopOnFirst && out.Class.IsFailure() && i < firstFail {
					firstFail = i
					cancel()
				}
				mu.Unlock()
			}
		}(w)
	}
dispatch:
	for i := range scenarios {
		select {
		case <-ctx.Done():
			break dispatch
		case indices <- i:
		}
	}
	close(indices)
	wg.Wait()
	return outs, ran, panicked
}

// safeRun invokes the RunFunc, converting a panic into a
// detected-safe outcome so one crashing scenario cannot take down the
// whole campaign. The second return reports whether a panic was
// recovered, feeding Result.PanicRecoveries.
func (c *Campaign) safeRun(sc fault.Scenario) (o fault.Outcome, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			o = fault.Outcome{
				Scenario: sc,
				Class:    fault.DetectedSafe,
				Detail:   fmt.Sprintf("campaign panic recovered: %v", r),
			}
		}
	}()
	return c.Run(sc), false
}

// assemble folds per-index outcomes into a Result in scenario order,
// reproducing the sequential semantics bit for bit: the tally and
// outcome list stop at the first failure when StopOnFirst is set,
// and extra outcomes a parallel run completed past that point are
// discarded. PanicRecoveries counts only runs included in the result,
// so it too is identical across worker counts.
func (c *Campaign) assemble(scenarios []fault.Scenario, outs []fault.Outcome, ran, panicked []bool) *Result {
	res := &Result{Name: c.Name, Tally: make(fault.Tally)}
	for i := range scenarios {
		if !ran[i] {
			break
		}
		o := outs[i]
		res.Outcomes = append(res.Outcomes, o)
		res.Tally.Add(o)
		if panicked[i] {
			res.PanicRecoveries++
		}
		if o.Class.IsFailure() && res.RunsToFirstFailure == 0 {
			res.RunsToFirstFailure = i + 1
			if c.StopOnFirst {
				break
			}
		}
	}
	return res
}

// FailureRate reports the fraction of runs that ended in unhandled
// failure.
func (r *Result) FailureRate() float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	return float64(r.Tally.Failures()) / float64(len(r.Outcomes))
}

// ByClass returns the outcomes with the given classification.
func (r *Result) ByClass(c fault.Classification) []fault.Outcome {
	var out []fault.Outcome
	for _, o := range r.Outcomes {
		if o.Class == c {
			out = append(out, o)
		}
	}
	return out
}
