package stressor

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// adaptiveUniverse builds a small multi-site, multi-model universe.
func adaptiveUniverse(sites int) []fault.Descriptor {
	var u []fault.Descriptor
	for i := 0; i < sites; i++ {
		target := fmt.Sprintf("site%d", i)
		for _, m := range []fault.Model{fault.BitFlip, fault.StuckAt0} {
			u = append(u, fault.Descriptor{
				Name: target + "/" + m.String(), Model: m,
				Class: fault.Permanent, Target: target, Bit: uint(i % 8),
			})
		}
	}
	return u
}

// sigRunFunc is a pure, content-deterministic RunFunc whose outcome
// (class and signature) is a hash of the scenario's fault content —
// the synthetic stand-in for a real prototype runner. jitter adds
// content-dependent wall-clock skew so parallel completions genuinely
// reorder.
func sigRunFunc(calls *int32, jitter bool) RunFunc {
	classes := []fault.Classification{
		fault.Masked, fault.DetectedSafe, fault.SDC, fault.Latent, fault.NoEffect,
	}
	return func(sc fault.Scenario) fault.Outcome {
		if calls != nil {
			atomic.AddInt32(calls, 1)
		}
		h := sim.NewStateHash()
		for _, d := range sc.Faults {
			h.Str(descKey(d))
		}
		sig := h.Sum()
		if jitter {
			time.Sleep(time.Duration(sig%4) * time.Millisecond)
		}
		cls := classes[sig%uint64(len(classes))]
		return fault.Outcome{
			Scenario: sc, Class: cls, Detail: "ran " + sc.ID,
			Signature: sim.MixSignature(sig, uint64(cls)),
		}
	}
}

// newNoveltySource builds the standard deterministic adaptive source
// used across these tests.
func newNoveltySource(u []fault.Descriptor, budget int, seed int64) *scenario.Novelty {
	n := scenario.NewNovelty(u, budget, rand.New(rand.NewSource(seed)))
	n.Mutator().Window = sim.MS(1)
	return n
}

// TestAdaptiveDeterminismAcrossWorkers is the adaptive engine's core
// contract: with a fixed strategy seed, the AdaptiveResult is
// byte-identical at every worker count, because Observe delivery is
// forced into proposal order.
func TestAdaptiveDeterminismAcrossWorkers(t *testing.T) {
	u := adaptiveUniverse(4)
	ref := func(workers int) *AdaptiveResult {
		c := &AdaptiveCampaign{
			Name:    "ad-det",
			Run:     sigRunFunc(nil, workers > 0),
			Source:  newNoveltySource(u, 60, 42),
			Workers: workers,
			MaxRuns: 40,
			Prune:   true,
		}
		res, err := c.Execute()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	want := ref(0)
	if want.Simulated != 40 {
		t.Fatalf("Simulated = %d, want the full MaxRuns budget 40", want.Simulated)
	}
	for _, workers := range []int{1, 4} {
		got := ref(workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d diverged from sequential:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// listSource proposes a fixed scenario list (no adaptation) and
// records the Observe order.
type listSource struct {
	scs      []fault.Scenario
	next     int
	observed []fault.Outcome
}

func (s *listSource) Next() (fault.Scenario, bool) {
	if s.next >= len(s.scs) {
		return fault.Scenario{}, false
	}
	sc := s.scs[s.next]
	s.next++
	return sc, true
}

func (s *listSource) Observe(o fault.Outcome) { s.observed = append(s.observed, o) }

// TestAdaptiveObserveOrder pins the determinism rule directly: under
// parallel execution with completion-order skew, outcomes still reach
// Observe in exact proposal order.
func TestAdaptiveObserveOrder(t *testing.T) {
	var scs []fault.Scenario
	for i := 0; i < 30; i++ {
		scs = append(scs, fault.Single(fault.Descriptor{
			Name: fmt.Sprintf("p%d", i), Model: fault.BitFlip, Target: "t", Bit: uint(i % 60),
		}))
	}
	src := &listSource{scs: scs}
	c := &AdaptiveCampaign{
		Name: "ad-order", Run: sigRunFunc(nil, true), Source: src,
		Workers: 4, Lookahead: 6,
	}
	if _, err := c.Execute(); err != nil {
		t.Fatal(err)
	}
	if len(src.observed) != len(scs) {
		t.Fatalf("observed %d outcomes, want %d", len(src.observed), len(scs))
	}
	for i, o := range src.observed {
		if want := fmt.Sprintf("p%d", i); o.Scenario.ID != want {
			t.Fatalf("Observe %d got %s, want %s — delivery left proposal order", i, o.Scenario.ID, want)
		}
		if o.Signature == 0 {
			t.Fatalf("outcome %d delivered without a signature", i)
		}
	}
}

// TestAdaptivePruneEquivalence: proposals with identical fault content
// are answered from the memo — one simulation, outcomes fanned out
// under each proposal's own scenario, budget untouched.
func TestAdaptivePruneEquivalence(t *testing.T) {
	base := fault.Descriptor{Name: "orig", Model: fault.BitFlip, Target: "t", Bit: 3}
	dup1, dup2 := base, base
	dup1.Name, dup2.Name = "dup-a", "dup-b" // same content, new names
	other := fault.Descriptor{Name: "other", Model: fault.StuckAt0, Target: "t"}
	src := &listSource{scs: []fault.Scenario{
		fault.Single(base), fault.Single(dup1), fault.Single(other), fault.Single(dup2),
	}}
	var calls int32
	c := &AdaptiveCampaign{
		Name: "ad-prune", Run: sigRunFunc(&calls, false), Source: src,
		Prune: true, // MaxRuns 0: the 4-proposal source self-budgets
		// The prune memo holds *delivered* outcomes (that is what keeps
		// it deterministic), so duplicates must trail their
		// representative by at least the lookahead window to be caught.
		Lookahead: 1,
	}
	res, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("RunFunc called %d times, want 2 (duplicates pruned)", calls)
	}
	if res.PrunedEquiv != 2 || res.Simulated != 2 || len(res.Outcomes) != 4 {
		t.Errorf("pruned=%d simulated=%d outcomes=%d, want 2/2/4", res.PrunedEquiv, res.Simulated, len(res.Outcomes))
	}
	// Pruned outcomes carry their own scenario identity but the
	// representative's class and signature.
	if res.Outcomes[1].Scenario.ID != "dup-a" || res.Outcomes[1].Signature != res.Outcomes[0].Signature {
		t.Errorf("pruned outcome = %+v, want dup-a with %#x", res.Outcomes[1], res.Outcomes[0].Signature)
	}
	if res.Outcomes[1].Class != res.Outcomes[0].Class {
		t.Error("pruned outcome class differs from representative")
	}
}

// TestAdaptiveBudgetAndHalt: MaxRuns caps simulated runs; Halt stops
// proposing but in-flight runs still deliver.
func TestAdaptiveBudgetAndHalt(t *testing.T) {
	u := adaptiveUniverse(6)
	c := &AdaptiveCampaign{
		Name: "ad-budget", Run: sigRunFunc(nil, false),
		Source: newNoveltySource(u, 1000, 7), MaxRuns: 9,
	}
	res, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.Simulated != 9 || res.Halted {
		t.Errorf("simulated=%d halted=%v, want 9/false", res.Simulated, res.Halted)
	}

	h := &AdaptiveCampaign{
		Name: "ad-halt", Run: sigRunFunc(nil, false),
		Source: newNoveltySource(u, 1000, 7), MaxRuns: 100,
		Halt: func(completed int) bool { return completed >= 4 },
	}
	hres, err := h.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !hres.Halted {
		t.Fatal("campaign did not report Halted")
	}
	if len(hres.Outcomes) < 4 || len(hres.Outcomes) >= 100 {
		t.Errorf("halted after %d outcomes, want a small partial result", len(hres.Outcomes))
	}
}

// TestAdaptivePanicRecovery mirrors the fixed-universe engine: a
// panicking RunFunc yields detected-safe with the standard detail and
// the campaign continues.
func TestAdaptivePanicRecovery(t *testing.T) {
	scs := []fault.Scenario{
		fault.Single(fault.Descriptor{Name: "ok1", Model: fault.BitFlip, Target: "t"}),
		fault.Single(fault.Descriptor{Name: "boom", Model: fault.BitFlip, Target: "t", Bit: 1}),
		fault.Single(fault.Descriptor{Name: "ok2", Model: fault.BitFlip, Target: "t", Bit: 2}),
	}
	src := &listSource{scs: scs}
	c := &AdaptiveCampaign{
		Name: "ad-panic",
		Run: func(sc fault.Scenario) fault.Outcome {
			if sc.ID == "boom" {
				panic("injected crash")
			}
			return fault.Outcome{Scenario: sc, Class: fault.Masked}
		},
		Source: src,
	}
	res, err := c.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if res.PanicRecoveries != 1 || len(res.Outcomes) != 3 {
		t.Fatalf("recoveries=%d outcomes=%d, want 1/3", res.PanicRecoveries, len(res.Outcomes))
	}
	o := res.Outcomes[1]
	if o.Class != fault.DetectedSafe || !strings.Contains(o.Detail, "campaign panic recovered") {
		t.Errorf("panic outcome = %+v", o)
	}
	if o.Signature == 0 {
		t.Error("panic outcome got no fallback signature")
	}
}

// TestAdaptiveJournalResume: interrupt an adaptive campaign via Halt,
// then resume from its journal with an identically configured source —
// the final result must match an uninterrupted run, with the already-
// journaled proposals replayed instead of re-simulated.
func TestAdaptiveJournalResume(t *testing.T) {
	u := adaptiveUniverse(4)
	const budget, seed = 24, 99
	header := journal.Header{
		Campaign: "ad-resume", Shard: 0, Shards: 1,
		Total: budget, Universe: "strategyfp", Adaptive: true,
	}
	build := func(workers int) *AdaptiveCampaign {
		return &AdaptiveCampaign{
			Name: "ad-resume", Run: sigRunFunc(nil, false),
			Source: newNoveltySource(u, 1000, seed),
			MaxRuns: budget, Prune: true, Workers: workers,
			Fingerprint: "strategyfp",
		}
	}
	// Reference: uninterrupted.
	want, err := build(0).Execute()
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "ad.journal")
	jw, err := journal.Create(path, header)
	if err != nil {
		t.Fatal(err)
	}
	first := build(0)
	first.Journal = jw
	first.Halt = func(completed int) bool { return completed >= 7 }
	fres, err := first.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if !fres.Halted {
		t.Fatal("first leg did not halt")
	}

	j, jw2, err := journal.AppendTo(path, header)
	if err != nil {
		t.Fatal(err)
	}
	var calls int32
	second := build(4)
	second.Run = sigRunFunc(&calls, false)
	second.Journal = jw2
	second.Resume = j
	got, err := second.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if err := jw2.Close(); err != nil {
		t.Fatal(err)
	}
	if got.ResumedSkips == 0 {
		t.Fatal("resume replayed nothing")
	}
	if int(calls) != want.Simulated-got.ResumedSkips {
		t.Errorf("second leg simulated %d, want %d (total %d minus %d resumed)",
			calls, want.Simulated-got.ResumedSkips, want.Simulated, got.ResumedSkips)
	}
	if !reflect.DeepEqual(got.Outcomes, want.Outcomes) || !reflect.DeepEqual(got.Tally, want.Tally) {
		t.Error("resumed result diverged from the uninterrupted run")
	}
	if got.UniqueSignatures != want.UniqueSignatures || got.PrunedEquiv != want.PrunedEquiv {
		t.Errorf("resumed stats %d/%d, want %d/%d",
			got.UniqueSignatures, got.PrunedEquiv, want.UniqueSignatures, want.PrunedEquiv)
	}
	// The completed journal replays into the full result a third time.
	j2, err := journal.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	third := build(0)
	third.Resume = j2
	tres, err := third.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if tres.Simulated != 0 {
		t.Errorf("fully journaled campaign re-simulated %d runs", tres.Simulated)
	}
	if !reflect.DeepEqual(tres.Outcomes, want.Outcomes) {
		t.Error("journal-only replay diverged")
	}
}

// TestAdaptiveResumeValidation: stale or foreign journals are refused
// before any run starts.
func TestAdaptiveResumeValidation(t *testing.T) {
	u := adaptiveUniverse(2)
	good := journal.Header{
		FormatMarker: journal.Format, Campaign: "ad-v", Shard: 0, Shards: 1,
		Total: 10, Universe: "fp", Adaptive: true,
	}
	cases := []struct {
		name   string
		mutate func(*journal.Journal)
	}{
		{"not adaptive", func(j *journal.Journal) { j.Header.Adaptive = false }},
		{"wrong campaign", func(j *journal.Journal) { j.Header.Campaign = "other" }},
		{"sharded", func(j *journal.Journal) { j.Header.Shards = 2 }},
		{"wrong budget", func(j *journal.Journal) { j.Header.Total = 11 }},
		{"wrong fingerprint", func(j *journal.Journal) { j.Header.Universe = "zz" }},
		{"bad class", func(j *journal.Journal) {
			j.Entries = append(j.Entries, journal.Entry{Index: 0, ID: "x", Class: "nonsense"})
		}},
		{"conflicting entries", func(j *journal.Journal) {
			j.Entries = append(j.Entries,
				journal.Entry{Index: 0, ID: "x", Class: "masked"},
				journal.Entry{Index: 0, ID: "x", Class: "sdc"})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := &journal.Journal{Header: good}
			tc.mutate(j)
			c := &AdaptiveCampaign{
				Name: "ad-v", Run: sigRunFunc(nil, false),
				Source: newNoveltySource(u, 10, 1), MaxRuns: 10,
				Fingerprint: "fp", Resume: j,
			}
			if _, err := c.Execute(); err == nil {
				t.Fatal("invalid resume journal accepted")
			}
		})
	}
}

// TestAdaptiveResultConversion checks the Result() bridge used by the
// CLI summary and daemon result documents.
func TestAdaptiveResultConversion(t *testing.T) {
	ar := &AdaptiveResult{
		Name: "conv",
		Outcomes: []fault.Outcome{
			{Class: fault.Masked}, {Class: fault.SDC}, {Class: fault.Masked},
		},
		Tally:           fault.Tally{fault.Masked: 2, fault.SDC: 1},
		PrunedEquiv:     5,
		PanicRecoveries: 1,
	}
	r := ar.Result()
	if r.RunsToFirstFailure != 2 || r.DedupSavedRuns != 5 || r.PanicRecoveries != 1 {
		t.Errorf("converted result = %+v", r)
	}
}

// TestAdaptiveJournalFailureAborts: an append failure stops the
// campaign with an error, like the fixed-universe engine.
func TestAdaptiveJournalFailureAborts(t *testing.T) {
	u := adaptiveUniverse(2)
	c := &AdaptiveCampaign{
		Name: "ad-jfail", Run: sigRunFunc(nil, false),
		Source:  newNoveltySource(u, 100, 3),
		MaxRuns: 50,
		Journal: failAfterSink{},
	}
	if _, err := c.Execute(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v, want the journal failure", err)
	}
}

type failAfterSink struct{}

func (failAfterSink) Append(journal.Entry) error { return fmt.Errorf("disk full") }
