package stressor

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/journal"
)

// MergeSpec carries the campaign settings that shape a merged result.
// They must match what the shards ran with: StopOnFirst selects the
// truncate-at-first-failure semantics, Dedup must mirror the shards'
// setting so representative indices line up.
type MergeSpec struct {
	StopOnFirst bool
	Dedup       bool
}

// Merge folds the journals of a completed shard set into the Result
// the unsharded run would have produced, byte for byte. It validates
// everything first — format, matching headers, the exact shard set
// {0..N-1}, the universe fingerprint, per-entry scenario IDs — and
// refuses truncated journals (resume them to completion first) and
// incomplete coverage, so a partial or mismatched set can never be
// silently merged.
//
// StopOnFirst composes across shards: each shard stops at its own
// first failure, which sits at or after the global first failure f,
// and every position up to f is covered by its owning shard — so the
// merged assemble truncates at f exactly as the unsharded run would,
// and surplus runs past f are discarded.
func Merge(spec MergeSpec, scenarios []fault.Scenario, js []*journal.Journal) (*Result, error) {
	if len(js) == 0 {
		return nil, fmt.Errorf("stressor: merge of zero journals")
	}
	h0 := js[0].Header
	if h0.Total != len(scenarios) {
		return nil, fmt.Errorf("stressor: journals cover %d scenarios, universe has %d", h0.Total, len(scenarios))
	}
	if uh := UniverseHash(scenarios); h0.Universe != uh {
		return nil, fmt.Errorf("stressor: journal universe %s does not match scenario universe %s", h0.Universe, uh)
	}
	seen := make([]bool, h0.Shards)
	for _, j := range js {
		h := j.Header
		if j.Truncated {
			return nil, fmt.Errorf("stressor: journal for shard %d/%d is truncated — resume it to completion before merging", h.Shard, h.Shards)
		}
		if h.Campaign != h0.Campaign || h.Shards != h0.Shards || h.Total != h0.Total || h.Universe != h0.Universe {
			return nil, fmt.Errorf("stressor: journal for shard %d belongs to a different campaign (%+v vs %+v)", h.Shard, h, h0)
		}
		if seen[h.Shard] {
			return nil, fmt.Errorf("stressor: shard %d appears twice", h.Shard)
		}
		seen[h.Shard] = true
	}
	for s, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("stressor: shard %d/%d is missing", s, h0.Shards)
		}
	}

	// Rebuild the exact dedup plan the shards computed, then place
	// every journaled outcome at its unique-run position.
	run := scenarios
	var uniq, rep []int
	if spec.Dedup {
		uniq, rep = dedupPlan(scenarios)
		if len(uniq) < len(scenarios) {
			run = make([]fault.Scenario, len(uniq))
			for u, idx := range uniq {
				run[u] = scenarios[idx]
			}
		} else {
			uniq, rep = nil, nil
		}
	}
	pos := make(map[int]int, len(run)) // scenario index of a representative -> run position
	if uniq != nil {
		for u, idx := range uniq {
			pos[idx] = u
		}
	} else {
		for u := range run {
			pos[u] = u
		}
	}

	outs := make([]fault.Outcome, len(run))
	ran := make([]bool, len(run))
	panicked := make([]bool, len(run))
	for _, j := range js {
		for _, ent := range j.Entries {
			if scenarios[ent.Index].ID != ent.ID {
				return nil, fmt.Errorf("stressor: shard %d journal entry %d is scenario %q, universe has %q", j.Header.Shard, ent.Index, ent.ID, scenarios[ent.Index].ID)
			}
			u, ok := pos[ent.Index]
			if !ok {
				return nil, fmt.Errorf("stressor: shard %d journal entry %d is not a dedup representative (journals written without dedup?)", j.Header.Shard, ent.Index)
			}
			cls, ok := fault.ParseClassification(ent.Class)
			if !ok {
				return nil, fmt.Errorf("stressor: shard %d journal entry %d has unknown class %q", j.Header.Shard, ent.Index, ent.Class)
			}
			if ran[u] && (outs[u].Class != cls || outs[u].Detail != ent.Detail || panicked[u] != ent.Panicked) {
				return nil, fmt.Errorf("stressor: scenario %s (index %d) recorded twice with different outcomes", ent.ID, ent.Index)
			}
			outs[u] = fault.Outcome{Scenario: run[u], Class: cls, Detail: ent.Detail}
			ran[u], panicked[u] = true, ent.Panicked
		}
	}

	// Completeness: without StopOnFirst every unique position must be
	// covered; with it, every position up to the global first failure
	// must be — a gap below the cutoff means some shard is incomplete.
	stop := len(run)
	if spec.StopOnFirst {
		for u := range run {
			if ran[u] && outs[u].Class.IsFailure() {
				stop = u
				break
			}
		}
	}
	for u := 0; u < len(run) && u <= stop; u++ {
		if !ran[u] {
			return nil, fmt.Errorf("stressor: scenario %s (index %d) missing from the journals — shard %d is incomplete (interrupted? resume it first)", run[u].ID, origOf(uniq, u), u%h0.Shards)
		}
	}

	if uniq != nil {
		outs, ran, panicked = fanOut(scenarios, uniq, rep, outs, ran, panicked)
	}
	c := &Campaign{Name: h0.Campaign, StopOnFirst: spec.StopOnFirst}
	res := c.assemble(scenarios, outs, ran, panicked)
	if uniq != nil {
		res.DedupSavedRuns = len(scenarios) - len(uniq)
	}
	return res, nil
}

// origOf maps a unique-run position to its scenario index.
func origOf(uniq []int, u int) int {
	if uniq != nil {
		return uniq[u]
	}
	return u
}
