package stressor

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
)

// makeScenarios builds n valid single-fault scenarios named s0..s(n-1).
func makeScenarios(n int) []fault.Scenario {
	out := make([]fault.Scenario, n)
	for i := range out {
		out[i] = fault.Single(fault.Descriptor{
			Name: fmt.Sprintf("s%d", i), Model: fault.BitFlip, Target: "m",
		})
	}
	return out
}

// classRunFunc returns a pure (goroutine-safe) RunFunc mapping
// scenario si to classes[i].
func classRunFunc(classes []fault.Classification) RunFunc {
	return func(sc fault.Scenario) fault.Outcome {
		var i int
		fmt.Sscanf(sc.ID, "s%d", &i)
		return fault.Outcome{Scenario: sc, Class: classes[i], Detail: "ran " + sc.ID}
	}
}

// pattern expands a failure-index map over n scenarios, defaulting to
// Masked.
func pattern(n int, failures map[int]fault.Classification) []fault.Classification {
	out := make([]fault.Classification, n)
	for i := range out {
		out[i] = fault.Masked
	}
	for i, c := range failures {
		out[i] = c
	}
	return out
}

// TestCampaignDeterminismAcrossWorkers is the parallel-campaign
// contract: for any scenario list and any worker count, Execute
// returns a Result identical to the sequential one — outcome order,
// tally, RunsToFirstFailure — including under StopOnFirst with
// several failures in the list.
func TestCampaignDeterminismAcrossWorkers(t *testing.T) {
	const n = 20
	cases := []struct {
		name     string
		failures map[int]fault.Classification
	}{
		{"no failures", nil},
		{"single failure", map[int]fault.Classification{7: fault.SDC}},
		{"multiple failures", map[int]fault.Classification{
			3: fault.SDC, 5: fault.SafetyCritical, 11: fault.TimingViolation,
		}},
		{"failure first", map[int]fault.Classification{0: fault.SafetyCritical}},
		{"adjacent failures", map[int]fault.Classification{
			8: fault.SDC, 9: fault.SDC, 10: fault.SafetyCritical,
		}},
	}
	for _, tc := range cases {
		for _, stop := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/stop=%v", tc.name, stop), func(t *testing.T) {
				scenarios := makeScenarios(n)
				run := classRunFunc(pattern(n, tc.failures))
				baseline, err := (&Campaign{Name: "det", Run: run, StopOnFirst: stop, Workers: 0}).Execute(scenarios)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{0, 1, 4, 8, WorkersAuto} {
					c := &Campaign{Name: "det", Run: run, StopOnFirst: stop, Workers: workers}
					got, err := c.Execute(scenarios)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if !reflect.DeepEqual(got, baseline) {
						t.Errorf("workers=%d: result diverged from sequential\ngot:  %+v\nwant: %+v",
							workers, got, baseline)
					}
				}
			})
		}
	}
}

// TestCampaignValidatesUpFront is the regression test for lazy
// validation: a malformed scenario anywhere in the list must fail the
// campaign before a single expensive run executes.
func TestCampaignValidatesUpFront(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	c := &Campaign{
		Name: "upfront",
		Run: func(sc fault.Scenario) fault.Outcome {
			mu.Lock()
			runs++
			mu.Unlock()
			return fault.Outcome{Scenario: sc, Class: fault.Masked}
		},
	}
	for _, workers := range []int{0, 4} {
		c.Workers = workers
		scenarios := makeScenarios(5)
		scenarios = append(scenarios, fault.Scenario{ID: ""}) // invalid, at the end
		_, err := c.Execute(scenarios)
		if err == nil {
			t.Fatalf("workers=%d: invalid scenario accepted", workers)
		}
		if runs != 0 {
			t.Errorf("workers=%d: %d runs executed before validation failed", workers, runs)
		}
	}
}

// TestCampaignPanicRecovery: a RunFunc that panics on one scenario
// must not kill the campaign — the panicking run classifies as
// detected-safe with the panic in the detail, and every other
// scenario still completes.
func TestCampaignPanicRecovery(t *testing.T) {
	const n = 12
	run := func(sc fault.Scenario) fault.Outcome {
		if sc.ID == "s5" {
			panic("injector exploded")
		}
		return fault.Outcome{Scenario: sc, Class: fault.Masked}
	}
	for _, workers := range []int{0, 4} {
		c := &Campaign{Name: "panic", Run: run, Workers: workers}
		res, err := c.Execute(makeScenarios(n))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Outcomes) != n {
			t.Fatalf("workers=%d: %d outcomes, want %d", workers, len(res.Outcomes), n)
		}
		o := res.Outcomes[5]
		if o.Class != fault.DetectedSafe || !strings.Contains(o.Detail, "injector exploded") {
			t.Errorf("workers=%d: panic outcome = %+v", workers, o)
		}
		if res.Tally[fault.Masked] != n-1 || res.Tally[fault.DetectedSafe] != 1 {
			t.Errorf("workers=%d: tally = %v", workers, res.Tally)
		}
	}
}

// TestCampaignStopOnFirstParallelDiscards: once an early-indexed
// failure lands, a parallel StopOnFirst campaign must stop
// dispatching later scenarios and discard any that were already in
// flight — the Result is exactly the sequential one, and nowhere near
// the full list executes.
func TestCampaignStopOnFirstParallelDiscards(t *testing.T) {
	const n, failAt, workers = 200, 2, 4
	var mu sync.Mutex
	executed := 0
	run := func(sc fault.Scenario) fault.Outcome {
		mu.Lock()
		executed++
		mu.Unlock()
		var i int
		fmt.Sscanf(sc.ID, "s%d", &i)
		if i == failAt {
			return fault.Outcome{Scenario: sc, Class: fault.SafetyCritical, Detail: "ran " + sc.ID}
		}
		time.Sleep(100 * time.Microsecond) // keep non-failing runs slower than the failure
		return fault.Outcome{Scenario: sc, Class: fault.Masked, Detail: "ran " + sc.ID}
	}
	scenarios := makeScenarios(n)
	seq, err := (&Campaign{Name: "stop", Run: run, StopOnFirst: true, Workers: 0}).Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	executed = 0
	par, err := (&Campaign{Name: "stop", Run: run, StopOnFirst: true, Workers: workers}).Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Errorf("parallel StopOnFirst diverged\ngot:  %+v\nwant: %+v", par, seq)
	}
	if len(par.Outcomes) != failAt+1 || par.RunsToFirstFailure != failAt+1 {
		t.Errorf("outcomes = %d, first = %d", len(par.Outcomes), par.RunsToFirstFailure)
	}
	// The exact overshoot depends on scheduling, but cancellation must
	// keep it far below the full list.
	if executed > 50 {
		t.Errorf("parallel campaign executed %d of %d scenarios after the stop point", executed, n)
	}
}

// dedupScenarios builds n uniquely named scenarios whose fault content
// cycles through k distinct bit values, so dedup must collapse n runs
// into k.
func dedupScenarios(n, k int) []fault.Scenario {
	out := make([]fault.Scenario, n)
	for i := range out {
		out[i] = fault.Single(fault.Descriptor{
			Name: fmt.Sprintf("d%d", i), Model: fault.BitFlip, Target: "m",
			Bit: uint(i % k),
		})
	}
	return out
}

// contentRunFunc keys class and detail on the fault content (not the
// scenario ID), matching the determinism assumption Dedup documents.
func contentRunFunc(byBit map[uint]fault.Classification, calls *int32) RunFunc {
	return func(sc fault.Scenario) fault.Outcome {
		atomic.AddInt32(calls, 1)
		bit := sc.Faults[0].Bit
		class, ok := byBit[bit]
		if !ok {
			class = fault.Masked
		}
		return fault.Outcome{Scenario: sc, Class: class, Detail: fmt.Sprintf("bit %d", bit)}
	}
}

// TestCampaignDedup checks the collapse: 12 scenarios with 3 distinct
// fault contents run 3 simulations, and the fanned-out Result matches
// the non-dedup Result for every worker mode.
func TestCampaignDedup(t *testing.T) {
	const n, k = 12, 3
	scs := dedupScenarios(n, k)
	byBit := map[uint]fault.Classification{2: fault.DetectedSafe}

	var refCalls int32
	ref, err := (&Campaign{Name: "ref", Run: contentRunFunc(byBit, &refCalls)}).Execute(scs)
	if err != nil {
		t.Fatal(err)
	}
	if refCalls != n {
		t.Fatalf("reference ran %d scenarios, want %d", refCalls, n)
	}

	for _, workers := range []int{0, 3, WorkersAuto} {
		var calls int32
		c := &Campaign{Name: "ref", Run: contentRunFunc(byBit, &calls), Dedup: true, Workers: workers}
		res, err := c.Execute(scs)
		if err != nil {
			t.Fatal(err)
		}
		if calls != k {
			t.Fatalf("workers=%d: dedup ran %d simulations, want %d", workers, calls, k)
		}
		if res.DedupSavedRuns != n-k {
			t.Fatalf("workers=%d: DedupSavedRuns = %d, want %d", workers, res.DedupSavedRuns, n-k)
		}
		if !reflect.DeepEqual(ref.Outcomes, res.Outcomes) || !reflect.DeepEqual(ref.Tally, res.Tally) {
			t.Fatalf("workers=%d: dedup result differs from reference", workers)
		}
		for i, o := range res.Outcomes {
			if o.Scenario.ID != scs[i].ID {
				t.Fatalf("outcome %d carries scenario %q, want %q", i, o.Scenario.ID, scs[i].ID)
			}
		}
	}
}

// TestCampaignDedupStopOnFirst: the early-stop prefix must be
// identical with and without dedup (a duplicate can never fail before
// its representative).
func TestCampaignDedupStopOnFirst(t *testing.T) {
	scs := dedupScenarios(12, 3)
	byBit := map[uint]fault.Classification{1: fault.SDC}
	var refCalls int32
	ref, err := (&Campaign{Name: "s", Run: contentRunFunc(byBit, &refCalls), StopOnFirst: true}).Execute(scs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		var calls int32
		c := &Campaign{Name: "s", Run: contentRunFunc(byBit, &calls), StopOnFirst: true, Dedup: true, Workers: workers}
		res, err := c.Execute(scs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Outcomes, res.Outcomes) ||
			res.RunsToFirstFailure != ref.RunsToFirstFailure {
			t.Fatalf("workers=%d: dedup+StopOnFirst diverges: ref %d outcomes, got %d",
				workers, len(ref.Outcomes), len(res.Outcomes))
		}
	}
}

// TestCampaignDedupAllUnique: with no duplicates the plan is dropped
// and the result reports zero savings.
func TestCampaignDedupAllUnique(t *testing.T) {
	scs := dedupScenarios(5, 5)
	var calls int32
	c := &Campaign{Name: "u", Run: contentRunFunc(nil, &calls), Dedup: true}
	res, err := c.Execute(scs)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 || res.DedupSavedRuns != 0 || len(res.Outcomes) != 5 {
		t.Fatalf("all-unique dedup: calls=%d saved=%d outcomes=%d", calls, res.DedupSavedRuns, len(res.Outcomes))
	}
}
