// Package stressor implements the stressor of the paper's Fig. 3
// closed loop: a UVM testbench component that takes a formal
// fault/error scenario and drives the registered injectors at the
// right simulated times — activating permanent faults once, opening
// and closing transient windows, and pulsing intermittent faults. It
// also provides the campaign engine that repeats stress tests over a
// scenario list and tallies the resulting outcome classifications
// ("repeated stress tests enable a quantitative evaluation", Sec. 3.4).
package stressor

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/uvm"
)

// Record is one injector action taken by the stressor.
type Record struct {
	Fault  fault.Descriptor
	At     sim.Time
	Inject bool // true = inject, false = revert
	Err    error
}

// Stressor schedules a scenario's descriptors onto injectors during
// the UVM run phase.
type Stressor struct {
	uvm.Comp
	registry *fault.Registry
	scenario fault.Scenario
	// Horizon bounds intermittent-fault window generation; it should
	// cover the test length.
	Horizon sim.Time

	records []Record

	// reuse machinery: the bound step method value and the timeline
	// scratch buffer survive Respawn, so a pooled prototype slot drives
	// scenario after scenario without reallocating either.
	stepFn func()
	tl     []timelineEntry

	// method-process state for the campaign path (Respawn/SpawnThread):
	// the timeline cursor and the self-notification event. The stressor
	// runs as a method process there — a state machine with no goroutine
	// stack — so a kernel carrying one stays snapshottable
	// (sim.Snapshottable); the UVM run phase still uses the thread-bodied
	// Run below.
	k   *sim.Kernel
	ev  *sim.Event
	idx int
}

// New creates a stressor component.
func New(parent uvm.Component, name string, reg *fault.Registry) *Stressor {
	s := &Stressor{registry: reg, Horizon: sim.MS(1)}
	uvm.NewComp(s, parent, name)
	return s
}

// SpawnThread schedules a scenario on the kernel without a UVM
// environment — for virtual prototypes wired directly on the kernel
// (the CAPS and ECU campaigns use this form). Despite the historical
// name, the stressor runs as a method-process state machine, not a
// kernel thread, so the hosting kernel remains snapshottable.
func SpawnThread(k *sim.Kernel, reg *fault.Registry, sc fault.Scenario, horizon sim.Time) *Stressor {
	s := &Stressor{}
	s.Respawn(k, reg, sc, horizon)
	return s
}

// Respawn re-arms the stressor for another scenario on a freshly
// elaborated (or reset, or checkpoint-restored) kernel, reusing its
// internal buffers. Campaign runners that pool prototype slots keep
// one stressor per slot and Respawn it each scenario instead of
// allocating a new one.
//
// The stressor elaborates as one event plus one method process whose
// initial activation walks the timeline from the current kernel time:
// on a fresh kernel that is time 0 (identical to the old thread form),
// and on a kernel restored to just before the first injection instant
// the first actions land at exactly the simulated times a full run
// would produce — which is what makes checkpointed campaign results
// byte-identical.
func (s *Stressor) Respawn(k *sim.Kernel, reg *fault.Registry, sc fault.Scenario, horizon sim.Time) {
	s.registry = reg
	s.scenario = sc
	s.Horizon = horizon
	s.records = s.records[:0]
	s.timeline()
	s.idx = 0
	s.k = k
	if s.stepFn == nil {
		s.stepFn = s.step
	}
	name := "stressor." + sc.ID
	s.ev = k.NewEvent(name)
	k.Method(name, s.stepFn, s.ev)
}

// step is one activation of the campaign-path method process: perform
// every action due at the current time, then schedule the next one.
func (s *Stressor) step() {
	now := s.k.Now()
	for s.idx < len(s.tl) && s.tl[s.idx].at <= now {
		e := s.tl[s.idx]
		s.idx++
		var err error
		if e.inject {
			err = s.registry.Inject(e.desc)
		} else {
			err = s.registry.Revert(e.desc)
		}
		s.records = append(s.records, Record{Fault: e.desc, At: now, Inject: e.inject, Err: err})
	}
	if s.idx < len(s.tl) {
		s.ev.Notify(s.tl[s.idx].at - now)
	}
}

// ForkTime reports the earliest injection instant of the scenario —
// the latest point a golden run can be checkpointed at and still
// reproduce the scenario exactly — or 0 when the scenario carries no
// faults. Every stressor action (including transient reverts and
// intermittent windows) happens at or after this time.
func ForkTime(sc fault.Scenario) sim.Time {
	var min sim.Time
	for i, d := range sc.Faults {
		if i == 0 || d.Start < min {
			min = d.Start
		}
	}
	return min
}

// SetScenario installs the fault set for the next run.
func (s *Stressor) SetScenario(sc fault.Scenario) {
	s.scenario = sc
}

// Records reports every injector action taken, in time order.
func (s *Stressor) Records() []Record { return s.records }

// Finished reports whether every scheduled timeline action has been
// performed. Convergence checks gate on this: a pending revert or
// intermittent pulse could still push a run off the golden trajectory,
// so state comparisons before the last action prove nothing.
func (s *Stressor) Finished() bool { return s.idx >= len(s.tl) }

// InjectionErrors reports actions that failed (missing injector,
// unsupported model) — these indicate a broken campaign setup, not a
// DUT failure.
func (s *Stressor) InjectionErrors() []error {
	var errs []error
	for _, r := range s.records {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s at %s: %w", r.Fault.Name, r.At, r.Err))
		}
	}
	return errs
}

// timelineEntry is one scheduled action.
type timelineEntry struct {
	at     sim.Time
	inject bool
	desc   fault.Descriptor
}

// timeline expands the scenario into a sorted action list (backed by
// the stressor's scratch buffer, valid until the next call).
func (s *Stressor) timeline() []timelineEntry {
	tl := s.tl[:0]
	for _, d := range s.scenario.Faults {
		switch d.Class {
		case fault.Permanent:
			tl = append(tl, timelineEntry{at: d.Start, inject: true, desc: d})
		case fault.Transient:
			tl = append(tl, timelineEntry{at: d.Start, inject: true, desc: d})
			tl = append(tl, timelineEntry{at: d.Start + d.Duration, inject: false, desc: d})
		case fault.Intermittent:
			for t := d.Start; t < s.Horizon; t += d.Period {
				tl = append(tl, timelineEntry{at: t, inject: true, desc: d})
				tl = append(tl, timelineEntry{at: t + d.Duration, inject: false, desc: d})
			}
		}
	}
	// Stable insertion sort: timelines hold a handful of entries and
	// this runs once per campaign scenario — sort.SliceStable's closure
	// and reflection swapper would allocate every call.
	for i := 1; i < len(tl); i++ {
		e := tl[i]
		j := i - 1
		for j >= 0 && tl[j].at > e.at {
			tl[j+1] = tl[j]
			j--
		}
		tl[j+1] = e
	}
	s.tl = tl
	return tl
}

// Run implements uvm.Component: walk the timeline in simulated time.
func (s *Stressor) Run(ctx *sim.ThreadCtx) {
	for _, e := range s.timeline() {
		if e.at > ctx.Now() {
			ctx.WaitTime(e.at - ctx.Now())
		}
		var err error
		if e.inject {
			err = s.registry.Inject(e.desc)
		} else {
			err = s.registry.Revert(e.desc)
		}
		s.records = append(s.records, Record{Fault: e.desc, At: ctx.Now(), Inject: e.inject, Err: err})
	}
}
