package stressor

// The adaptive campaign engine: instead of executing a pre-enumerated
// scenario list, it pulls scenarios one at a time from a feedback-
// driven source (scenario.Novelty, or any Strategy), fans them across
// the worker pool, and delivers every outcome back through Observe in
// strict proposal order. That ordering rule is the whole determinism
// story — the source sees exactly the same observation sequence
// whether the runs execute inline or on N workers, so a fixed strategy
// seed yields byte-identical results at every worker count (the
// stressortest adaptive axis pins this on both prototypes).
//
// Two signature-plane features ride on the ordered loop:
//
//   - equivalence pruning: scenarios whose fault content matches an
//     already-delivered run are not re-simulated — the memoized outcome
//     is replayed under the new scenario's identity, without consuming
//     the simulated-run budget;
//   - outcome signatures: every delivered outcome carries a non-zero
//     64-bit equivalence fingerprint (the RunFunc's model-state digest
//     when provided, a class+detail fallback otherwise), which is what
//     novelty-guided sources feed on and what the journal persists so
//     a resumed campaign can rebuild its strategy state.
//
// Scope: the adaptive engine deliberately does not compose with Dedup
// (pruning subsumes it), Shard, Checkpoints/CheckpointTree/EarlyExit
// or StopOnFirst — those are fixed-universe optimizations; the
// adaptive universe only exists as the campaign unfolds.

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sim"
)

// ScenarioSource feeds an adaptive campaign: Next proposes scenarios,
// Observe receives each delivered outcome. scenario.Strategy satisfies
// it (the interface is restated here so the engine does not depend on
// the strategy package). The engine serializes all Next/Observe calls
// on one goroutine, in proposal order — implementations need no
// locking, and deterministic implementations make the whole campaign
// deterministic.
type ScenarioSource interface {
	Next() (fault.Scenario, bool)
	Observe(fault.Outcome)
}

// DefaultLookahead is the proposal window when Lookahead is unset:
// how many proposals may be in flight before the oldest outcome must
// be delivered back to the source.
const DefaultLookahead = 8

// AdaptiveCampaign runs the closed strategy⇄simulation loop of Fig. 3
// with pipelined execution. See the package comment above for the
// ordering and signature semantics.
type AdaptiveCampaign struct {
	// Name labels the campaign in reports, metrics and journals.
	Name string
	// Run executes one scenario (same contract as Campaign.Run; must
	// be concurrency-safe when Workers != 0). RunFuncs that populate
	// Outcome.Signature (the runners' signed variants) give the
	// campaign real behavioral equivalence classes; plain RunFuncs get
	// a class+detail fallback signature.
	Run RunFunc
	// Source proposes scenarios and learns from outcomes.
	Source ScenarioSource
	// Workers selects execution like Campaign.Workers: 0 sequential,
	// N > 0 a pool, WorkersAuto sizes to GOMAXPROCS. The result is
	// identical for every setting.
	Workers int
	// Lookahead bounds in-flight proposals (default DefaultLookahead).
	// It is part of the campaign's deterministic identity: the source
	// observes outcome i before proposing scenario i+Lookahead, so
	// changing it changes what adaptive sources propose. It is NOT a
	// function of Workers for exactly that reason.
	Lookahead int
	// MaxRuns budgets simulated runs (pruned proposals are free);
	// 0 means run until the source exhausts — only safe with a
	// self-budgeting source.
	MaxRuns int
	// Prune short-circuits proposals whose fault content (descriptor
	// fields except names) matches an already-delivered run: the
	// memoized outcome is replayed, no simulation happens, no budget
	// is consumed, nothing is journaled. Requires a content-
	// deterministic RunFunc, like Campaign.Dedup.
	Prune bool
	// Journal, when non-nil, records each simulated run keyed by its
	// proposal sequence number, with its signature, so the campaign
	// survives interruption. Create the file with Header.Adaptive set,
	// Total = MaxRuns and Universe = Fingerprint.
	Journal JournalSink
	// Resume replays a previously recorded adaptive journal: the
	// canonical proposal loop re-runs (the source must be configured
	// identically — same seed, same budget), and proposals whose
	// sequence number the journal covers skip simulation, feeding the
	// recorded outcome (and signature) to Observe instead.
	Resume *journal.Journal
	// Fingerprint identifies the strategy configuration (e.g. the seed
	// universe's UniverseHash). Stamped into created journals by the
	// caller and validated against Resume's header when non-empty.
	Fingerprint string
	// Halt, polled with the delivered-outcome count before each
	// proposal, stops the campaign gracefully: in-flight runs finish,
	// are journaled and delivered; nothing new is proposed.
	Halt func(completed int) bool
	// Metrics, when non-nil, receives campaign telemetry: the shared
	// campaign.runs / elapsed_ns / outcomes counters plus the adaptive
	// plane's campaign.signatures_unique gauge, campaign.pruned_equiv
	// counter and campaign.scenarios_per_sec gauge, all labeled with
	// the campaign name.
	Metrics *obs.Registry
	// Log, when non-nil, receives structured engine events.
	Log *slog.Logger
}

// AdaptiveResult is a finished adaptive campaign. Outcomes hold every
// delivered proposal — simulated, pruned and resumed — in proposal
// order.
type AdaptiveResult struct {
	Name     string
	Outcomes []fault.Outcome
	Tally    fault.Tally
	// Proposed counts delivered proposals (== len(Outcomes)).
	Proposed int
	// Simulated counts runs actually executed by this Execute
	// (excludes pruned replays and journal-resumed runs).
	Simulated int
	// PrunedEquiv counts proposals answered from the equivalence memo
	// instead of simulation.
	PrunedEquiv int
	// ResumedSkips counts proposals answered from the resume journal.
	ResumedSkips int
	// UniqueSignatures counts distinct outcome signatures delivered.
	UniqueSignatures int
	// PanicRecoveries counts delivered runs whose RunFunc panicked.
	PanicRecoveries int
	// Halted reports that Halt stopped the campaign before the source
	// or budget did.
	Halted bool
}

// Result converts to the classic campaign Result shape (for summary
// rendering and the daemon's result documents). PrunedEquiv maps onto
// DedupSavedRuns — both count runs answered without simulation.
func (r *AdaptiveResult) Result() *Result {
	res := &Result{
		Name:            r.Name,
		Outcomes:        r.Outcomes,
		Tally:           r.Tally,
		PanicRecoveries: r.PanicRecoveries,
		DedupSavedRuns:  r.PrunedEquiv,
	}
	for i, o := range r.Outcomes {
		if o.Class.IsFailure() {
			res.RunsToFirstFailure = i + 1
			break
		}
	}
	return res
}

// fallbackSignature derives an outcome signature for RunFuncs that do
// not compute one: classification folded with the detail text. Coarser
// than a model-state digest — outcomes that differ only in final state
// collapse — but still non-zero and deterministic.
func fallbackSignature(o fault.Outcome) uint64 {
	h := sim.NewStateHash()
	h.Int(int(o.Class))
	h.Str(o.Detail)
	return sim.MixSignature(h.Sum())
}

// adaptiveProposal is one in-flight slot of the reorder window.
type adaptiveProposal struct {
	seq      int
	sc       fault.Scenario
	key      string
	pruned   bool
	resumed  bool
	out      fault.Outcome
	panicked bool
	// done is non-nil only for runs dispatched to the worker pool;
	// closed when out/panicked are filled.
	done chan struct{}
}

// resumeMap validates c.Resume against this campaign and indexes its
// entries by proposal sequence number.
func (c *AdaptiveCampaign) resumeMap() (map[int]journal.Entry, error) {
	if c.Resume == nil {
		return nil, nil
	}
	h := c.Resume.Header
	switch {
	case !h.Adaptive:
		return nil, fmt.Errorf("adaptive campaign %s: resume journal was written by a fixed-universe campaign", c.Name)
	case h.Campaign != c.Name:
		return nil, fmt.Errorf("adaptive campaign %s: resume journal belongs to campaign %q", c.Name, h.Campaign)
	case h.Shards != 1 || h.Shard != 0:
		return nil, fmt.Errorf("adaptive campaign %s: resume journal is sharded (%d/%d); adaptive campaigns do not shard", c.Name, h.Shard, h.Shards)
	case h.Total != c.MaxRuns:
		return nil, fmt.Errorf("adaptive campaign %s: resume journal budget %d does not match MaxRuns %d", c.Name, h.Total, c.MaxRuns)
	case c.Fingerprint != "" && h.Universe != c.Fingerprint:
		return nil, fmt.Errorf("adaptive campaign %s: resume journal fingerprint %s does not match %s", c.Name, h.Universe, c.Fingerprint)
	}
	m := make(map[int]journal.Entry, len(c.Resume.Entries))
	for _, ent := range c.Resume.Entries {
		if _, ok := fault.ParseClassification(ent.Class); !ok {
			return nil, fmt.Errorf("adaptive campaign %s: journal entry %d has unknown class %q", c.Name, ent.Index, ent.Class)
		}
		if prev, ok := m[ent.Index]; ok && prev != ent {
			return nil, fmt.Errorf("adaptive campaign %s: journal records proposal %d twice with different outcomes", c.Name, ent.Index)
		}
		m[ent.Index] = ent
	}
	return m, nil
}

// safeRun mirrors Campaign.safeRun bit for bit (same detail format)
// so a panicking scenario classifies identically on either engine.
func (c *AdaptiveCampaign) safeRun(sc fault.Scenario) (o fault.Outcome, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			o = fault.Outcome{
				Scenario: sc,
				Class:    fault.DetectedSafe,
				Detail:   fmt.Sprintf("campaign panic recovered: %v", r),
			}
		}
	}()
	return c.Run(sc), false
}

// Execute runs the adaptive loop to completion (source exhausted,
// budget spent, or halted) and returns the delivered outcomes in
// proposal order.
func (c *AdaptiveCampaign) Execute() (*AdaptiveResult, error) {
	if c.Run == nil || c.Source == nil {
		return nil, fmt.Errorf("adaptive campaign %s: needs both Run and Source", c.Name)
	}
	if c.MaxRuns < 0 {
		return nil, fmt.Errorf("adaptive campaign %s: negative MaxRuns %d", c.Name, c.MaxRuns)
	}
	lookahead := c.Lookahead
	if lookahead <= 0 {
		lookahead = DefaultLookahead
	}
	workers := par.Resolve(c.Workers)
	resumed, err := c.resumeMap()
	if err != nil {
		return nil, err
	}

	res := &AdaptiveResult{Name: c.Name, Tally: make(fault.Tally)}
	var (
		window     []*adaptiveProposal
		nextSeq    int
		dispatched int // simulated + resumed proposals, counted against MaxRuns
		sourceDone bool
		memo       = make(map[string]fault.Outcome)
		sigs       = make(map[uint64]struct{})
		appends    int
		abortErr   error
	)

	// Worker pool: buffered to the window size, so dispatch never
	// blocks and the proposal loop stays on its canonical schedule.
	var jobs chan *adaptiveProposal
	var wg sync.WaitGroup
	if workers > 0 {
		jobs = make(chan *adaptiveProposal, lookahead)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for p := range jobs {
					p.out, p.panicked = c.safeRun(p.sc)
					close(p.done)
				}
			}()
		}
	}

	// propose pulls one scenario and either answers it from the resume
	// journal / equivalence memo or dispatches a simulation. The memo
	// holds delivered outcomes only, so the prune decision at proposal
	// seq s depends on exactly the outcomes of seqs delivered before s
	// was proposed — a pure function of the canonical schedule.
	propose := func() error {
		sc, ok := c.Source.Next()
		if !ok {
			sourceDone = true
			return nil
		}
		if err := sc.Validate(); err != nil {
			return err
		}
		p := &adaptiveProposal{seq: nextSeq, sc: sc, key: scenarioContentKey(sc)}
		nextSeq++
		if ent, ok := resumed[p.seq]; ok {
			if ent.ID != sc.ID {
				return fmt.Errorf("journal proposal %d is scenario %q, replay proposed %q (strategy configuration changed?)", p.seq, ent.ID, sc.ID)
			}
			cls, _ := fault.ParseClassification(ent.Class)
			p.resumed = true
			p.out = fault.Outcome{Scenario: sc, Class: cls, Detail: ent.Detail, Signature: ent.Sig}
			p.panicked = ent.Panicked
			dispatched++
		} else if c.Prune {
			if out, ok := memo[p.key]; ok {
				out.Scenario = sc
				p.pruned = true
				p.out = out
			}
		}
		if !p.resumed && !p.pruned {
			dispatched++
			res.Simulated++
			if workers == 0 {
				p.out, p.panicked = c.safeRun(p.sc)
			} else {
				p.done = make(chan struct{})
				jobs <- p
			}
		}
		window = append(window, p)
		return nil
	}

	// deliver hands the head proposal's outcome back: journal (for
	// fresh simulations), memo, signature index, Observe, tally.
	deliver := func(p *adaptiveProposal) error {
		out := p.out
		if !p.pruned && out.Signature == 0 {
			out.Signature = fallbackSignature(out)
		}
		if !p.pruned {
			memo[p.key] = out
		}
		if out.Signature != 0 {
			sigs[out.Signature] = struct{}{}
		}
		if !p.pruned && !p.resumed && c.Journal != nil {
			err := c.Journal.Append(journal.Entry{
				Index: p.seq, ID: p.sc.ID,
				Class: out.Class.String(), Detail: out.Detail,
				Panicked: p.panicked, Sig: out.Signature,
			})
			if err != nil {
				return err
			}
			appends++
		}
		c.Source.Observe(out)
		res.Outcomes = append(res.Outcomes, out)
		res.Tally.Add(out)
		if p.pruned {
			res.PrunedEquiv++
		}
		if p.resumed {
			res.ResumedSkips++
		}
		if p.panicked {
			res.PanicRecoveries++
		}
		return nil
	}

	if c.Log != nil {
		c.Log.Info("adaptive campaign start", "campaign", c.Name,
			"budget", c.MaxRuns, "lookahead", lookahead,
			"workers", workers, "prune", c.Prune, "resumed", len(resumed))
	}
	start := time.Now()
	for {
		// Fill the proposal window, then deliver its head: the canonical
		// interleaving propose(0..W-1), [deliver(i), propose(W+i)]...
		for abortErr == nil && !res.Halted && !sourceDone && len(window) < lookahead &&
			(c.MaxRuns == 0 || dispatched < c.MaxRuns) {
			if c.Halt != nil && c.Halt(len(res.Outcomes)) {
				res.Halted = true
				break
			}
			if err := propose(); err != nil {
				abortErr = err
			}
		}
		if len(window) == 0 {
			break
		}
		p := window[0]
		window = window[1:]
		if p.done != nil {
			<-p.done
		}
		if abortErr != nil {
			continue // drain in-flight runs, deliver nothing further
		}
		if err := deliver(p); err != nil {
			abortErr = err
		}
	}
	if workers > 0 {
		close(jobs)
		wg.Wait()
	}
	elapsed := time.Since(start)
	if abortErr != nil {
		if c.Log != nil {
			c.Log.Error("adaptive campaign aborted", "campaign", c.Name, "err", abortErr)
		}
		return nil, fmt.Errorf("adaptive campaign %s: %w", c.Name, abortErr)
	}
	res.Proposed = len(res.Outcomes)
	res.UniqueSignatures = len(sigs)
	if c.Log != nil {
		if res.Halted {
			c.Log.Info("adaptive campaign halted", "campaign", c.Name, "completed", len(res.Outcomes))
		} else {
			c.Log.Info("adaptive campaign done", "campaign", c.Name,
				"proposed", res.Proposed, "simulated", res.Simulated,
				"pruned", res.PrunedEquiv, "unique_signatures", res.UniqueSignatures,
				"failures", res.Tally.Failures(), "elapsed", elapsed)
		}
	}
	c.publish(res, elapsed, appends)
	return res, nil
}

// publish folds the finished adaptive result into the metrics
// registry, reusing the fixed-universe campaign's metric names where
// the semantics coincide.
func (c *AdaptiveCampaign) publish(res *AdaptiveResult, elapsed time.Duration, appends int) {
	if c.Metrics == nil {
		return
	}
	reg := c.Metrics
	name := obs.L("campaign", c.Name)
	for class, n := range res.Tally {
		reg.Counter("campaign.outcomes", name, obs.L("class", class.String())).Add(uint64(n))
	}
	reg.Counter("campaign.runs", name).Add(uint64(len(res.Outcomes)))
	reg.Counter("campaign.elapsed_ns", name).Add(uint64(elapsed.Nanoseconds()))
	reg.Gauge("campaign.signatures_unique", name).Set(float64(res.UniqueSignatures))
	reg.Counter("campaign.pruned_equiv", name).Add(uint64(res.PrunedEquiv))
	if res.PanicRecoveries > 0 {
		reg.Counter("campaign.panic_recoveries", name).Add(uint64(res.PanicRecoveries))
	}
	if c.Journal != nil {
		reg.Counter("campaign.journal_appends", name).Add(uint64(appends))
	}
	if c.Resume != nil {
		reg.Counter("campaign.resumed_skips", name).Add(uint64(res.ResumedSkips))
	}
	if elapsed > 0 && res.Simulated > 0 {
		reg.Gauge("campaign.scenarios_per_sec", name).Set(float64(res.Simulated) / elapsed.Seconds())
	}
}

// scenarioContentKey serializes a scenario's fault content (descriptor
// fields except names) — the equivalence-pruning and dedup key.
func scenarioContentKey(sc fault.Scenario) string {
	key := ""
	for _, d := range sc.Faults {
		key += descKey(d) + ";"
	}
	return key
}
