package stressor

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// flightKinds collects the Kind of every retained flight event.
func flightKinds(f *obs.FlightRecorder) map[string]int {
	kinds := map[string]int{}
	for _, e := range f.Snapshot() {
		kinds[e.Kind]++
	}
	return kinds
}

// TestCampaignFlightTimeoutAndPanicMarks: timeouts and recovered
// panics leave flight-recorder marks alongside their Result entries.
func TestCampaignFlightTimeoutAndPanicMarks(t *testing.T) {
	scenarios := makeScenarios(6)
	fr := obs.NewFlightRecorder(32)
	c := &Campaign{
		Name: "fl",
		Run: func(sc fault.Scenario) fault.Outcome {
			switch sc.ID {
			case scenarios[2].ID:
				select {} // hang: exceeds the scenario budget
			case scenarios[4].ID:
				panic("injector exploded")
			}
			return fault.Outcome{Scenario: sc, Class: fault.Masked}
		},
		ScenarioTimeout: 20 * time.Millisecond,
		Flight:          fr,
	}
	res, err := c.Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally[fault.Timeout] != 1 || res.PanicRecoveries != 1 {
		t.Fatalf("tally = %v, panics = %d", res.Tally, res.PanicRecoveries)
	}
	kinds := flightKinds(fr)
	if kinds["scenario.timeout"] != 1 {
		t.Errorf("flight kinds = %v, want one scenario.timeout", kinds)
	}
	if kinds["panic.recovered"] != 1 {
		t.Errorf("flight kinds = %v, want one panic.recovered", kinds)
	}
	for _, e := range fr.Snapshot() {
		if e.Run != "fl" {
			t.Errorf("flight event not labeled with the campaign: %+v", e)
		}
	}
}

// TestCampaignFlightSlowMark: a run at or over SlowScenario leaves a
// scenario.slow mark; fast runs do not.
func TestCampaignFlightSlowMark(t *testing.T) {
	scenarios := makeScenarios(4)
	fr := obs.NewFlightRecorder(16)
	c := &Campaign{
		Name: "sl",
		Run: func(sc fault.Scenario) fault.Outcome {
			if sc.ID == scenarios[1].ID {
				time.Sleep(30 * time.Millisecond)
			}
			return fault.Outcome{Scenario: sc, Class: fault.Masked}
		},
		SlowScenario: 10 * time.Millisecond,
		Flight:       fr,
	}
	if _, err := c.Execute(scenarios); err != nil {
		t.Fatal(err)
	}
	kinds := flightKinds(fr)
	if kinds["scenario.slow"] != 1 {
		t.Errorf("flight kinds = %v, want exactly one scenario.slow", kinds)
	}
	var detail string
	for _, e := range fr.Snapshot() {
		if e.Kind == "scenario.slow" {
			detail = e.Detail
		}
	}
	if !strings.Contains(detail, scenarios[1].ID) {
		t.Errorf("slow mark detail %q does not name the scenario", detail)
	}
}

// TestCampaignLiveCompletedCounter: campaign.completed ticks while the
// campaign runs (unlike the end-of-run counters publish adds), so a
// mid-flight /metrics scrape sees progress. Sequential execution makes
// the expected count at each step exact.
func TestCampaignLiveCompletedCounter(t *testing.T) {
	const n = 8
	scenarios := makeScenarios(n)
	reg := obs.NewRegistry()
	ctr := reg.Counter("campaign.completed", obs.L("campaign", "live"))
	sawMidFlight := false
	var idx int
	c := &Campaign{
		Name: "live",
		Run: func(sc fault.Scenario) fault.Outcome {
			if got, want := ctr.Value(), uint64(idx); got != want {
				t.Errorf("run %d: live completed = %d, want %d", idx, got, want)
			}
			if idx > 0 {
				sawMidFlight = true
			}
			idx++
			return fault.Outcome{Scenario: sc, Class: fault.Masked}
		},
		Metrics: reg,
	}
	if _, err := c.Execute(scenarios); err != nil {
		t.Fatal(err)
	}
	if !sawMidFlight {
		t.Error("never observed a non-zero live counter mid-flight")
	}
	if got := ctr.Value(); got != n {
		t.Errorf("final live completed = %d, want %d", got, n)
	}
	// The end-of-run counter agrees.
	if got := reg.Counter("campaign.runs", obs.L("campaign", "live")).Value(); got != n {
		t.Errorf("campaign.runs = %d, want %d", got, n)
	}
}

// TestCampaignSlogEvents: an attached slog logger sees structured
// start/done records carrying the campaign name.
func TestCampaignSlogEvents(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(slog.NewJSONHandler(&buf, nil))
	scenarios := makeScenarios(3)
	c := &Campaign{
		Name: "lg",
		Run: func(sc fault.Scenario) fault.Outcome {
			return fault.Outcome{Scenario: sc, Class: fault.Masked}
		},
		Log: lg,
	}
	if _, err := c.Execute(scenarios); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"msg":"campaign start"`) || !strings.Contains(out, `"msg":"campaign done"`) {
		t.Errorf("log output missing start/done records:\n%s", out)
	}
	if !strings.Contains(out, `"campaign":"lg"`) {
		t.Errorf("log records not labeled with the campaign:\n%s", out)
	}

	// A halted campaign logs the halt instead of "done".
	buf.Reset()
	halted := &Campaign{
		Name: "lg",
		Run: func(sc fault.Scenario) fault.Outcome {
			return fault.Outcome{Scenario: sc, Class: fault.Masked}
		},
		Halt: func(completed int) bool { return completed >= 1 },
		Log:  lg,
	}
	if _, err := halted.Execute(scenarios); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"msg":"campaign halted"`) {
		t.Errorf("halted campaign did not log the halt:\n%s", buf.String())
	}
}
