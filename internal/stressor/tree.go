package stressor

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Checkpoint trees + convergence early-exit: the generalization of the
// single-checkpoint session of checkpoint.go. A tree session retains a
// budgeted set of golden-prefix snapshots ("nodes"), one per injection
// instant it has visited, and establishes each scenario from the
// deepest retained node at or before its fork time — so a campaign
// whose fork times regress (StopOnFirst index order, daemon sessions
// parked across campaigns, resumed tails) forks from the deepest
// shared prefix instead of re-simulating from time zero. Convergence
// early-exit layers on top: the golden trajectory is hashed at a fixed
// stride, and a faulty run whose post-injection state hash returns to
// the golden trajectory stops simulating immediately and inherits the
// golden-equal classification — byte-identical to running it out.

// Default tree budgets, applied when TreeConfig leaves them zero.
const (
	// DefaultTreeMaxNodes bounds the retained snapshots per session.
	DefaultTreeMaxNodes = 32
	// DefaultTreeMaxBytes bounds the kernel-side bytes those snapshots
	// retain (model-state captures are not counted; see
	// Checkpoint.ApproxBytes).
	DefaultTreeMaxBytes = 16 << 20
)

// TreeConfig parameterizes a checkpoint-tree session.
type TreeConfig struct {
	// MaxNodes is the LRU depth budget on retained tree nodes
	// (0 selects DefaultTreeMaxNodes). A single-node tree degenerates
	// to the plain CheckpointSession behavior.
	MaxNodes int
	// MaxBytes is the byte budget on retained kernel snapshots
	// (0 selects DefaultTreeMaxBytes).
	MaxBytes int
	// EarlyExit enables convergence detection against the golden
	// trajectory.
	EarlyExit bool
	// HashStride is the trajectory hashing interval (0 lets the runner
	// derive one from its horizon, typically horizon/16).
	HashStride sim.Time
	// Metrics, when non-nil, receives tree/early-exit counters labeled
	// with Campaign. The campaign Result is identical without it.
	Metrics *obs.Registry
	// Campaign labels the counters.
	Campaign string
}

// withDefaults fills the budget defaults.
func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxNodes <= 0 {
		c.MaxNodes = DefaultTreeMaxNodes
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultTreeMaxBytes
	}
	return c
}

// TreeCheckpointer is implemented by runners that support checkpoint
// trees (and convergence early-exit) on top of the plain Checkpointer
// contract. NewTreeSession is NewSession with a tree configuration;
// the returned session should also implement RecyclableSession so the
// campaign can reclaim its node buffers after abandonment.
type TreeCheckpointer interface {
	Checkpointer
	NewTreeSession(cfg TreeConfig) CheckpointSession
}

// RecyclableSession is a CheckpointSession whose retained node buffers
// can be returned to the runner's shared pool without closing the
// session. The campaign calls Recycle exactly once for a session it
// abandoned (after the runaway run has finished, so no goroutine still
// touches the buffers) — abandoned sessions are still never Closed.
type RecyclableSession interface {
	CheckpointSession
	Recycle()
}

// TreeNode is one retained golden-prefix snapshot: the kernel
// checkpoint and the paired model-state capture at fork-1.
type TreeNode struct {
	fork sim.Time
	tick uint64
	cp   sim.Checkpoint
	mst  any
}

// NodePool is a runner-level free list of tree nodes, shared by every
// session of that runner so node buffers survive session abandonment,
// Close and cross-campaign daemon reuse. SnapshotInto and
// SnapshotStateInto fully overwrite a node's buffers, so recycling
// them across kernels is safe.
type NodePool struct {
	mu   sync.Mutex
	free []*TreeNode
	live int
}

// Get takes a node from the pool (allocating when empty).
func (p *NodePool) Get() *TreeNode {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.live++
	if n := len(p.free); n > 0 {
		nd := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return nd
	}
	return &TreeNode{}
}

// Put returns a node's buffers to the pool.
func (p *NodePool) Put(nd *TreeNode) {
	if nd == nil {
		return
	}
	nd.fork, nd.tick = 0, 0
	p.mu.Lock()
	p.live--
	p.free = append(p.free, nd)
	p.mu.Unlock()
}

// Live reports how many nodes are currently checked out — the
// leak-detection hook for engine lifecycle tests.
func (p *NodePool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// TreeCore is the prototype-agnostic heart of a tree session. The
// hosting session (caps, ecu) supplies the kernel, the model's
// Snapshottable hooks and a Rebuild closure that returns both to their
// pristine time-zero state; TreeCore owns node retention, restore
// dispatch, the LRU budget and the counters.
type TreeCore struct {
	Cfg   TreeConfig
	K     *sim.Kernel
	Model sim.Snapshottable
	// Rebuild returns kernel and model to pristine time zero (Reset +
	// Rearm + run-phase elaboration). It invalidates every retained
	// node — Establish recycles them first.
	Rebuild func()
	// Pool is the runner-shared node free list (required).
	Pool *NodePool

	nodes  []*TreeNode // sorted by fork, ascending
	tick   uint64
	virgin bool // kernel freshly built, pristine at time zero
	dirty  bool // a run advanced past the last established instant
	cur    sim.Time

	hits, extends, rebuilds, evictions *obs.Counter
	earlyExits, savedNs                *obs.Counter
	nodesGauge                         *obs.Gauge
}

// Init finalizes the core after the host built its kernel and model.
func (t *TreeCore) Init() {
	t.Cfg = t.Cfg.withDefaults()
	t.virgin = true
	t.dirty = true
	if m := t.Cfg.Metrics; m != nil {
		l := obs.L("campaign", t.Cfg.Campaign)
		t.hits = m.Counter("campaign.tree_hits", l)
		t.extends = m.Counter("campaign.tree_extends", l)
		t.rebuilds = m.Counter("campaign.tree_rebuilds", l)
		t.evictions = m.Counter("campaign.tree_evictions", l)
		t.earlyExits = m.Counter("campaign.early_exits", l)
		t.savedNs = m.Counter("campaign.early_exit_saved_sim_ns", l)
		t.nodesGauge = m.Gauge("campaign.tree_nodes", l)
	}
}

// Nodes reports the retained node count (tests).
func (t *TreeCore) Nodes() int { return len(t.nodes) }

// MarkDirty records that the hosting session is about to run the
// kernel past the established instant.
func (t *TreeCore) MarkDirty() { t.dirty = true }

// Establish leaves kernel and model in the golden state at simulated
// time fork-1, with a node at fork retained for the next scenario.
// Cheapest case first: an exact-fork node is restored (or nothing
// happens if the kernel still sits there untouched); otherwise the
// deepest node before fork is restored and the golden run extended
// forward; with no usable node the prefix is rebuilt from time zero —
// which Resets the kernel and therefore recycles every retained node.
func (t *TreeCore) Establish(fork sim.Time) error {
	if !t.dirty && t.cur == fork {
		return nil
	}
	if nd := t.lookup(fork); nd != nil {
		if err := t.restore(nd); err != nil {
			return err
		}
		t.touch(nd)
		t.count(t.hits)
		t.cur, t.dirty = fork, false
		return nil
	}
	if nd := t.deepestBefore(fork); nd != nil {
		if err := t.restore(nd); err != nil {
			return err
		}
		t.touch(nd)
		t.count(t.extends)
	} else {
		// No retained prefix at or before fork: rebuild from zero. A
		// fresh kernel is already pristine; Rebuild Resets otherwise,
		// invalidating the whole tree.
		if !t.virgin {
			t.recycleAll()
			t.Rebuild()
		}
		t.count(t.rebuilds)
	}
	t.virgin = false
	if err := t.K.RunUntil(fork - 1); err != nil {
		return err
	}
	nd := t.Pool.Get()
	if err := t.K.SnapshotInto(&nd.cp); err != nil {
		t.Pool.Put(nd)
		return err
	}
	nd.mst = sim.SnapshotModelState(t.Model, nd.mst)
	nd.fork = fork
	t.insert(nd)
	t.touch(nd)
	t.evict()
	t.cur, t.dirty = fork, false
	if t.nodesGauge != nil {
		t.nodesGauge.Set(float64(len(t.nodes)))
	}
	return nil
}

// NoteEarlyExit records one converged run that skipped saved simulated
// time.
func (t *TreeCore) NoteEarlyExit(saved sim.Time) {
	if t.earlyExits != nil {
		t.earlyExits.Inc()
		t.savedNs.Add(uint64(saved))
	}
}

// Recycle implements the RecyclableSession half of the hosting
// session: every retained node goes back to the runner pool. Safe
// after abandonment — node buffers are fully overwritten on reuse.
func (t *TreeCore) Recycle() { t.recycleAll() }

func (t *TreeCore) restore(nd *TreeNode) error {
	if err := t.K.Restore(&nd.cp); err != nil {
		return err
	}
	t.Model.RestoreState(nd.mst)
	return nil
}

func (t *TreeCore) lookup(fork sim.Time) *TreeNode {
	for _, nd := range t.nodes {
		if nd.fork == fork {
			return nd
		}
	}
	return nil
}

func (t *TreeCore) deepestBefore(fork sim.Time) *TreeNode {
	var best *TreeNode
	for _, nd := range t.nodes {
		if nd.fork < fork {
			best = nd // nodes sorted ascending
		}
	}
	return best
}

func (t *TreeCore) insert(nd *TreeNode) {
	i := len(t.nodes)
	t.nodes = append(t.nodes, nd)
	for i > 0 && t.nodes[i-1].fork > nd.fork {
		t.nodes[i] = t.nodes[i-1]
		i--
	}
	t.nodes[i] = nd
}

func (t *TreeCore) touch(nd *TreeNode) {
	t.tick++
	nd.tick = t.tick
}

// evict enforces the node-count and byte budgets, dropping the least
// recently used nodes first (never the one just touched).
func (t *TreeCore) evict() {
	for len(t.nodes) > 1 {
		over := len(t.nodes) > t.Cfg.MaxNodes
		if !over {
			bytes := 0
			for _, nd := range t.nodes {
				bytes += nd.cp.ApproxBytes()
			}
			over = bytes > t.Cfg.MaxBytes
		}
		if !over {
			return
		}
		lru := 0
		for i, nd := range t.nodes {
			if nd.tick < t.nodes[lru].tick {
				lru = i
			}
		}
		if t.nodes[lru].tick == t.tick {
			return // everything else already evicted
		}
		nd := t.nodes[lru]
		copy(t.nodes[lru:], t.nodes[lru+1:])
		t.nodes[len(t.nodes)-1] = nil
		t.nodes = t.nodes[:len(t.nodes)-1]
		t.Pool.Put(nd)
		t.count(t.evictions)
	}
}

func (t *TreeCore) recycleAll() {
	for i, nd := range t.nodes {
		t.Pool.Put(nd)
		t.nodes[i] = nil
	}
	t.nodes = t.nodes[:0]
	t.dirty = true
	if t.nodesGauge != nil {
		t.nodesGauge.Set(0)
	}
}

func (t *TreeCore) count(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// GoldenTrajectory is the golden run's incremental state-hash stream:
// Hashes[i] is the digest of model + scheduler state after running to
// (i+1)*Stride, for every stride instant strictly before Horizon. The
// digests are derived from the Snapshottable/Hashable capture — no
// full snapshots are taken.
type GoldenTrajectory struct {
	Stride  sim.Time
	Horizon sim.Time
	// NEvents/NProcs are the golden elaboration's object counts; live
	// runs restrict their scheduler hash to this prefix so the
	// stressor's own event/process (elaborated after the model) never
	// enters the digest.
	NEvents, NProcs int
	Hashes          []uint64
}

// RecordTrajectory runs a freshly elaborated golden kernel (no
// stressor) to horizon in stride chunks, recording the state digest at
// each stride instant. Chunked RunUntil is observationally identical
// to one full run, so the recorded digests are exactly what a faulty
// run's model would hash to at those instants had the fault never
// perturbed anything.
func RecordTrajectory(k *sim.Kernel, m sim.Hashable, stride, horizon sim.Time) (*GoldenTrajectory, error) {
	return RecordTrajectoryFunc(k, m, stride, horizon, nil)
}

// RecordTrajectoryFunc is RecordTrajectory with a per-stride hook:
// onStride is called with the kernel standing at each recorded stride
// instant (index i, time (i+1)*stride), letting the caller capture
// model-specific sidecar state alongside the digest — e.g. the golden
// output-history lengths an early-exited run splices its composite
// observation at.
func RecordTrajectoryFunc(k *sim.Kernel, m sim.Hashable, stride, horizon sim.Time, onStride func(i int, t sim.Time)) (*GoldenTrajectory, error) {
	stride = NormalizeStride(stride, horizon)
	tr := &GoldenTrajectory{Stride: stride, Horizon: horizon}
	tr.NEvents, tr.NProcs = k.Elaborated()
	for t := stride; t < horizon; t += stride {
		if err := k.RunUntil(t); err != nil {
			return nil, err
		}
		if onStride != nil {
			onStride(len(tr.Hashes), t)
		}
		tr.Hashes = append(tr.Hashes, tr.digest(k, m))
	}
	return tr, nil
}

// NormalizeStride resolves the default trajectory stride — horizon/16,
// minimum one time unit. Runners key their trajectory caches by the
// normalized value.
func NormalizeStride(stride, horizon sim.Time) sim.Time {
	if stride <= 0 {
		stride = horizon / 16
	}
	if stride <= 0 {
		stride = 1
	}
	return stride
}

// digest folds scheduler + model state into one hash value.
func (tr *GoldenTrajectory) digest(k *sim.Kernel, m sim.Hashable) uint64 {
	h := sim.NewStateHash()
	k.HashScheduler(&h, tr.NEvents, tr.NProcs)
	m.HashState(&h)
	return h.Sum()
}

// RunToHorizon advances an injected run from its current time to the
// horizon in trajectory-stride chunks, checking for convergence at
// each stride instant once the stressor has performed every scheduled
// action (a pending revert or intermittent pulse could still push the
// run off the golden trajectory, so earlier instants are not
// compared). On a digest match the run terminates immediately:
// converged state plus an empty remaining stressor timeline implies
// the suffix is byte-identical to the golden run's, so the final
// observation is the golden one. Runs whose injections errored never
// converge here — their campaign-error outcome requires the full path.
func (tr *GoldenTrajectory) RunToHorizon(k *sim.Kernel, m sim.Hashable, st *Stressor) (converged bool, at sim.Time, err error) {
	now := k.Now()
	checkable := true
	checked := false
	for i := range tr.Hashes {
		t := sim.Time(i+1) * tr.Stride
		if t <= now {
			continue
		}
		if err := k.RunUntil(t); err != nil {
			return false, 0, err
		}
		if !st.Finished() || !checkable {
			continue
		}
		if !checked {
			checked = true
			if len(st.InjectionErrors()) > 0 {
				checkable = false
				continue
			}
		}
		if tr.digest(k, m) == tr.Hashes[i] {
			return true, t, nil
		}
	}
	if err := k.RunUntil(tr.Horizon); err != nil {
		return false, 0, err
	}
	return false, 0, nil
}
