package stressor

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/journal"
)

// distinctScenarios builds n scenarios with distinct fault content
// (makeScenarios varies only the Name, which dedup ignores).
func distinctScenarios(n int) []fault.Scenario {
	out := make([]fault.Scenario, n)
	for i := range out {
		out[i] = fault.Single(fault.Descriptor{
			Name: fmt.Sprintf("s%d", i), Model: fault.BitFlip, Target: "m", Bit: uint(i),
		})
	}
	return out
}

// TestOwnedIndices pins the exported shard-ownership helper against
// the engine's own partition: the indices it reports are exactly the
// entries each shard journals.
func TestOwnedIndices(t *testing.T) {
	scenarios := distinctScenarios(11)
	// Make s3/s7 duplicates of s1 so dedup collapses them.
	scenarios[3].Faults = scenarios[1].Faults
	scenarios[7].Faults = scenarios[1].Faults
	for _, dedup := range []bool{false, true} {
		for _, shards := range []int{1, 2, 3} {
			var all []int
			for i := 0; i < shards; i++ {
				sh := Shard{Index: i, Count: shards}
				owned := OwnedIndices(scenarios, dedup, sh)
				all = append(all, owned...)
				// Cross-check against the journal the engine writes.
				path := filepath.Join(t.TempDir(), "j.jsonl")
				w, err := journal.Create(path, shardHeader("own", sh, scenarios))
				if err != nil {
					t.Fatal(err)
				}
				c := Campaign{Name: "own", Run: classRunFunc(pattern(len(scenarios), nil)), Dedup: dedup, Shard: sh, Journal: w}
				if _, err := c.Execute(scenarios); err != nil {
					t.Fatal(err)
				}
				w.Close()
				j, err := journal.Read(path)
				if err != nil {
					t.Fatal(err)
				}
				var journaled []int
				for _, e := range j.Entries {
					journaled = append(journaled, e.Index)
				}
				if !reflect.DeepEqual(owned, journaled) {
					t.Fatalf("dedup=%v shard %d/%d: OwnedIndices %v, journal has %v", dedup, i, shards, owned, journaled)
				}
			}
			wantTotal := len(scenarios)
			if dedup {
				wantTotal -= 2
			}
			if len(all) != wantTotal {
				t.Fatalf("dedup=%v shards=%d: %d indices across shards, want %d", dedup, shards, len(all), wantTotal)
			}
		}
	}
	// The zero shard lists every representative.
	if got := OwnedIndices(scenarios, false, Shard{}); len(got) != len(scenarios) {
		t.Fatalf("zero shard owns %d of %d", len(got), len(scenarios))
	}
}

// TestMergeMixedCodecs is the heterogeneous-encoding contract: a merge
// set where one shard journaled binary and the other JSONL produces a
// Result identical to the all-JSONL merge and to the unsharded run —
// the codec is a file-format fact, never a semantic one.
func TestMergeMixedCodecs(t *testing.T) {
	const n, shards = 20, 2
	scenarios := distinctScenarios(n)
	scenarios[9].Faults = scenarios[2].Faults // dedup fold crossing shards
	tmpl := Campaign{
		Name: "mixed", Dedup: true,
		Run: classRunFunc(pattern(n, map[int]fault.Classification{11: fault.SDC})),
	}
	baseline, err := (&Campaign{Name: tmpl.Name, Dedup: tmpl.Dedup, Run: tmpl.Run}).Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}

	runShards := func(codecs []journal.Codec) []*journal.Journal {
		dir := t.TempDir()
		js := make([]*journal.Journal, shards)
		for s := 0; s < shards; s++ {
			sh := Shard{Index: s, Count: shards}
			path := filepath.Join(dir, fmt.Sprintf("shard%d.j", s))
			w, err := journal.CreateCodec(path, shardHeader(tmpl.Name, sh, scenarios), codecs[s])
			if err != nil {
				t.Fatal(err)
			}
			c := tmpl
			c.Shard = sh
			c.Journal = w
			if _, err := c.Execute(scenarios); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if js[s], err = journal.Read(path); err != nil {
				t.Fatal(err)
			}
			if js[s].Codec != codecs[s] {
				t.Fatalf("shard %d sniffed as %q, wrote %q", s, js[s].Codec, codecs[s])
			}
		}
		return js
	}

	jsonlOnly := runShards([]journal.Codec{journal.JSONL, journal.JSONL})
	mixed := runShards([]journal.Codec{journal.Binary, journal.JSONL})
	spec := MergeSpec{Dedup: tmpl.Dedup}
	ref, err := Merge(spec, scenarios, jsonlOnly)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Merge(spec, scenarios, mixed)
	if err != nil {
		t.Fatalf("mixed-codec merge: %v", err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("mixed-codec merge differs from all-JSONL merge:\n%+v\n%+v", got, ref)
	}
	if !reflect.DeepEqual(got, baseline) {
		t.Fatalf("mixed-codec merge differs from unsharded run:\n%+v\n%+v", got, baseline)
	}
}
