package stressor

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/sim"
)

// fakeCheckpointer is a minimal Checkpointer for engine-level tests:
// every scenario forks at 1ps, sessions run via the supplied function,
// and the session/close counters expose the engine's lifecycle calls.
type fakeCheckpointer struct {
	run      RunFunc
	sessions atomic.Int32
	closes   atomic.Int32
}

func (f *fakeCheckpointer) ForkTime(fault.Scenario) (sim.Time, bool) { return 1, true }

func (f *fakeCheckpointer) NewSession() CheckpointSession {
	f.sessions.Add(1)
	return &fakeSession{f: f}
}

type fakeSession struct{ f *fakeCheckpointer }

func (s *fakeSession) Run(sc fault.Scenario, fork sim.Time) fault.Outcome { return s.f.run(sc) }
func (s *fakeSession) Close()                                             { s.f.closes.Add(1) }

// TestCampaignCheckpointValidation: Checkpoints without a Checkpointer
// is a configuration error caught before any run.
func TestCampaignCheckpointValidation(t *testing.T) {
	_, err := (&Campaign{Name: "cv", Run: classRunFunc(pattern(1, nil)), Checkpoints: true}).Execute(makeScenarios(1))
	if err == nil || !strings.Contains(err.Error(), "Checkpointer") {
		t.Fatalf("Checkpoints without Checkpointer accepted: %v", err)
	}
}

// TestCampaignTimeoutLateRunDiscarded forces the abandonment
// interleaving the timeout contract promises to survive: a scenario
// blocks past its wall-clock budget, the campaign records it as
// fault.Timeout and moves on, and only THEN does the runaway goroutine
// finish. Its late outcome must never reach the result or the journal
// — the journal holds exactly one entry per index, with the timed-out
// index classified timeout, even after the late goroutine has fully
// drained.
func TestCampaignTimeoutLateRunDiscarded(t *testing.T) {
	const n = 6
	for _, workers := range []int{0, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			block := make(chan struct{})
			lateDone := make(chan struct{})
			run := func(sc fault.Scenario) fault.Outcome {
				if sc.ID == "s1" {
					<-block
					defer close(lateDone)
					// The late outcome is a loud failure class: if it leaked
					// into the result or journal, the assertions below trip.
					return fault.Outcome{Scenario: sc, Class: fault.SafetyCritical, Detail: "late write"}
				}
				return fault.Outcome{Scenario: sc, Class: fault.Masked, Detail: "ran " + sc.ID}
			}
			scenarios := makeScenarios(n)
			path := filepath.Join(t.TempDir(), "j.jsonl")
			w, err := journal.Create(path, shardHeader("late", Shard{}, scenarios))
			if err != nil {
				t.Fatal(err)
			}
			c := &Campaign{
				Name: "late", Run: run, Workers: workers,
				ScenarioTimeout: 20 * time.Millisecond, Journal: w,
			}
			res, err := c.Execute(scenarios)
			if err != nil {
				t.Fatal(err)
			}
			// Unblock the abandoned goroutine and wait for it to run to
			// completion before inspecting the journal: the race under
			// test is precisely this late finish.
			close(block)
			<-lateDone
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if res.Tally[fault.SafetyCritical] != 0 {
				t.Errorf("late outcome leaked into the result: %v", res.Tally)
			}
			if res.Outcomes[1].Class != fault.Timeout {
				t.Errorf("timed-out outcome = %+v", res.Outcomes[1])
			}
			j, err := journal.Read(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(j.Entries) != n {
				t.Fatalf("journal holds %d entries, want %d", len(j.Entries), n)
			}
			seen := make(map[int]int)
			for _, ent := range j.Entries {
				seen[ent.Index]++
				if ent.Index == 1 && ent.Class != fault.Timeout.String() {
					t.Errorf("journaled class for timed-out index = %q", ent.Class)
				}
				if ent.Class == fault.SafetyCritical.String() {
					t.Errorf("late outcome leaked into the journal: %+v", ent)
				}
			}
			for idx, count := range seen {
				if count != 1 {
					t.Errorf("index %d journaled %d times", idx, count)
				}
			}
		})
	}
}

// TestCampaignCheckpointSessionAbandonedOnTimeout: a timed-out run
// abandons the worker's checkpoint session (the runaway goroutine
// still owns it), the next eligible run builds a fresh one, and the
// abandoned session is never Closed.
func TestCampaignCheckpointSessionAbandonedOnTimeout(t *testing.T) {
	const n = 5
	block := make(chan struct{})
	defer close(block)
	cp := &fakeCheckpointer{}
	cp.run = func(sc fault.Scenario) fault.Outcome {
		if sc.ID == "s2" {
			<-block
		}
		return fault.Outcome{Scenario: sc, Class: fault.Masked, Detail: "ran " + sc.ID}
	}
	c := &Campaign{
		Name: "ab", Run: cp.run, Checkpoints: true, Checkpointer: cp,
		ScenarioTimeout: 20 * time.Millisecond,
	}
	res, err := c.Execute(makeScenarios(n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[2].Class != fault.Timeout {
		t.Fatalf("timed-out outcome = %+v", res.Outcomes[2])
	}
	if res.Tally[fault.Masked] != n-1 {
		t.Errorf("tally = %v", res.Tally)
	}
	// Session 1 served s0, s1 and was abandoned at s2's timeout;
	// session 2 served s3, s4 and was closed at worker-loop end.
	if got := cp.sessions.Load(); got != 2 {
		t.Errorf("NewSession called %d times, want 2 (fresh session after abandonment)", got)
	}
	if got := cp.closes.Load(); got != 1 {
		t.Errorf("Close called %d times, want 1 (abandoned session must not be closed)", got)
	}
}

// TestCampaignCheckpointSessionAbandonedOnPanic: same lifecycle for a
// panicking session run — recovered, recorded detected-safe, session
// abandoned.
func TestCampaignCheckpointSessionAbandonedOnPanic(t *testing.T) {
	const n = 4
	cp := &fakeCheckpointer{}
	cp.run = func(sc fault.Scenario) fault.Outcome {
		if sc.ID == "s1" {
			panic("kernel torn mid-run")
		}
		return fault.Outcome{Scenario: sc, Class: fault.Masked, Detail: "ran " + sc.ID}
	}
	res, err := (&Campaign{Name: "abp", Run: cp.run, Checkpoints: true, Checkpointer: cp}).Execute(makeScenarios(n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[1].Class != fault.DetectedSafe || res.PanicRecoveries != 1 {
		t.Fatalf("panicked outcome = %+v (recoveries %d)", res.Outcomes[1], res.PanicRecoveries)
	}
	if got := cp.sessions.Load(); got != 2 {
		t.Errorf("NewSession called %d times, want 2", got)
	}
	if got := cp.closes.Load(); got != 1 {
		t.Errorf("Close called %d times, want 1", got)
	}
}

// fakeTreeCheckpointer extends fakeCheckpointer with tree sessions
// that account retained nodes: the first Run of a session retains one
// node, Recycle and Close release it. The lifecycle tests assert the
// live-node count returns to baseline after every abandonment path —
// the engine must recycle, not leak, a session it can no longer use.
type fakeTreeCheckpointer struct {
	fakeCheckpointer
	treeSessions atomic.Int32
	liveNodes    atomic.Int32
	recycles     atomic.Int32
}

func (f *fakeTreeCheckpointer) NewTreeSession(cfg TreeConfig) CheckpointSession {
	f.treeSessions.Add(1)
	return &fakeTreeSession{f: f}
}

type fakeTreeSession struct {
	f        *fakeTreeCheckpointer
	retained atomic.Bool
}

func (s *fakeTreeSession) Run(sc fault.Scenario, fork sim.Time) fault.Outcome {
	if s.retained.CompareAndSwap(false, true) {
		s.f.liveNodes.Add(1)
	}
	return s.f.run(sc)
}

func (s *fakeTreeSession) Recycle() {
	s.f.recycles.Add(1)
	if s.retained.CompareAndSwap(true, false) {
		s.f.liveNodes.Add(-1)
	}
}

func (s *fakeTreeSession) Close() {
	s.f.closes.Add(1)
	s.Recycle()
}

// waitNodesDrained polls until the fake's live-node count reaches
// zero: the timeout path recycles from the runaway goroutine after the
// campaign has already returned.
func waitNodesDrained(t *testing.T, cp *fakeTreeCheckpointer) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for cp.liveNodes.Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := cp.liveNodes.Load(); got != 0 {
		t.Errorf("live tree nodes = %d after campaign drained, want 0 (leaked by abandonment)", got)
	}
}

// TestCampaignTreeSessionRecycledOnTimeout: a timed-out run abandons
// the worker's tree session, but its retained nodes must return to the
// pool once the runaway goroutine finishes — abandonment may not leak
// the node budget.
func TestCampaignTreeSessionRecycledOnTimeout(t *testing.T) {
	const n = 5
	block := make(chan struct{})
	lateDone := make(chan struct{})
	cp := &fakeTreeCheckpointer{}
	cp.run = func(sc fault.Scenario) fault.Outcome {
		if sc.ID == "s2" {
			defer close(lateDone)
			<-block
		}
		return fault.Outcome{Scenario: sc, Class: fault.Masked, Detail: "ran " + sc.ID}
	}
	c := &Campaign{
		Name: "tr", Run: cp.run, Checkpoints: true, Checkpointer: cp,
		CheckpointTree: true, ScenarioTimeout: 20 * time.Millisecond,
	}
	res, err := c.Execute(makeScenarios(n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[2].Class != fault.Timeout {
		t.Fatalf("timed-out outcome = %+v", res.Outcomes[2])
	}
	// Unblock the runaway goroutine; it recycles the abandoned
	// session's nodes on its way out.
	close(block)
	<-lateDone
	waitNodesDrained(t, cp)
	if got := cp.treeSessions.Load(); got != 2 {
		t.Errorf("NewTreeSession called %d times, want 2 (fresh session after abandonment)", got)
	}
	if got := cp.closes.Load(); got != 1 {
		t.Errorf("Close called %d times, want 1 (abandoned session recycled, not closed)", got)
	}
}

// TestCampaignTreeSessionRecycledOnPanic: a panicking run abandons the
// session, and — because the panic is recovered before abandonment —
// the engine reclaims its nodes synchronously, before Execute returns.
func TestCampaignTreeSessionRecycledOnPanic(t *testing.T) {
	const n = 4
	cp := &fakeTreeCheckpointer{}
	cp.run = func(sc fault.Scenario) fault.Outcome {
		if sc.ID == "s1" {
			panic("kernel torn mid-run")
		}
		return fault.Outcome{Scenario: sc, Class: fault.Masked, Detail: "ran " + sc.ID}
	}
	c := &Campaign{Name: "trp", Run: cp.run, Checkpoints: true, Checkpointer: cp, CheckpointTree: true}
	res, err := c.Execute(makeScenarios(n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[1].Class != fault.DetectedSafe || res.PanicRecoveries != 1 {
		t.Fatalf("panicked outcome = %+v (recoveries %d)", res.Outcomes[1], res.PanicRecoveries)
	}
	if got := cp.liveNodes.Load(); got != 0 {
		t.Errorf("live tree nodes = %d immediately after Execute, want 0 (panic path recycles synchronously)", got)
	}
	if got := cp.treeSessions.Load(); got != 2 {
		t.Errorf("NewTreeSession called %d times, want 2", got)
	}
	if got := cp.recycles.Load(); got < 2 {
		t.Errorf("Recycle called %d times, want >= 2 (abandoned session + closed session)", got)
	}
}

// TestCampaignTreeValidation: tree and early-exit modes are rejected
// up front when misconfigured — without Checkpoints, on a Checkpointer
// lacking tree support, or with a nonsensical hash stride.
func TestCampaignTreeValidation(t *testing.T) {
	run := classRunFunc(pattern(1, nil))
	scs := makeScenarios(1)
	plain := &fakeCheckpointer{run: run}
	tree := &fakeTreeCheckpointer{fakeCheckpointer: fakeCheckpointer{run: run}}
	cases := []struct {
		name string
		c    *Campaign
		want string
	}{
		{"tree without checkpoints", &Campaign{Name: "v", Run: run, CheckpointTree: true, Checkpointer: tree}, "Checkpoints"},
		{"early-exit without checkpoints", &Campaign{Name: "v", Run: run, EarlyExit: true, Checkpointer: tree}, "Checkpoints"},
		{"tree on plain checkpointer", &Campaign{Name: "v", Run: run, Checkpoints: true, CheckpointTree: true, Checkpointer: plain}, "TreeCheckpointer"},
		{"stride without early-exit", &Campaign{Name: "v", Run: run, Checkpoints: true, CheckpointTree: true, HashStride: 5, Checkpointer: tree}, "EarlyExit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.c.Execute(scs)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error mentioning %q, got: %v", tc.want, err)
			}
		})
	}
}

// TestCampaignCheckpointDispatchSorted: with checkpointing on (and no
// StopOnFirst), the todo stream is dispatched in fork-time order so a
// session's golden prefix only ever extends — while the Result stays
// in scenario order, byte-identical to the unsorted run.
func TestCampaignCheckpointDispatchSorted(t *testing.T) {
	const n = 8
	baseRun := classRunFunc(pattern(n, nil))
	baseline, err := (&Campaign{Name: "cs", Run: baseRun}).Execute(makeScenarios(n))
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	cp := &fakeCheckpointer{}
	cp.run = func(sc fault.Scenario) fault.Outcome {
		var i int
		fmt.Sscanf(sc.ID, "s%d", &i)
		order = append(order, i)
		return baseRun(sc)
	}
	c := &Campaign{Name: "cs", Run: cp.run, Checkpoints: true, Checkpointer: forkSorter{cp}}
	res, err := c.Execute(makeScenarios(n))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, baseline) {
		t.Errorf("checkpointed result diverged\ngot:  %+v\nwant: %+v", res, baseline)
	}
	// forkByIndex assigns descending fork times, so sequential dispatch
	// order must be exactly reversed index order.
	want := make([]int, n)
	for i := range want {
		want[i] = n - 1 - i
	}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("dispatch order = %v, want fork-sorted %v", order, want)
	}
}

// forkSorter wraps a fakeCheckpointer with per-index fork times.
type forkSorter struct {
	*fakeCheckpointer
}

func (forkSorter) ForkTime(sc fault.Scenario) (sim.Time, bool) {
	var i int
	fmt.Sscanf(sc.ID, "s%d", &i)
	return sim.Time(1000 - i), true // descending: s7 forks earliest
}

// TestCampaignHaltDuringReplay: an interrupt that fires while a
// resumed campaign is still replaying its journal — before any new
// run — must stop cleanly with zero new executions and zero new
// journal appends, leaving the journal valid and re-resumable to the
// exact uninterrupted result.
func TestCampaignHaltDuringReplay(t *testing.T) {
	const n, firstLeg = 9, 4
	scenarios := makeScenarios(n)
	run := classRunFunc(pattern(n, map[int]fault.Classification{6: fault.SDC}))
	baseline, err := (&Campaign{Name: "hr", Run: run}).Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "j.jsonl")
	h := shardHeader("hr", Shard{}, scenarios)
	w, err := journal.Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	c := &Campaign{
		Name: "hr", Run: run, Journal: w,
		Halt: func(completed int) bool { return completed >= firstLeg },
	}
	if _, err := c.Execute(scenarios); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Second leg: resume, but the halt hook reports an interrupt
	// immediately — the Ctrl-C landed while the journal was replaying.
	j, w2, err := journal.AppendTo(path, h)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	counted := func(sc fault.Scenario) fault.Outcome {
		calls.Add(1)
		return run(sc)
	}
	c2 := &Campaign{
		Name: "hr", Run: counted, Journal: w2, Resume: j,
		Halt: func(completed int) bool { return true },
	}
	partial, err := c2.Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Errorf("halt during replay still executed %d runs", calls.Load())
	}
	if w2.Appends() != 0 {
		t.Errorf("halt during replay appended %d journal entries", w2.Appends())
	}
	if len(partial.Outcomes) != firstLeg {
		t.Errorf("halted result holds %d outcomes, want the %d replayed", len(partial.Outcomes), firstLeg)
	}

	// Third leg: the journal must still be valid and resume to the
	// exact uninterrupted result.
	j3, w3, err := journal.AppendTo(path, h)
	if err != nil {
		t.Fatalf("journal no longer resumable after halt-during-replay: %v", err)
	}
	res, err := (&Campaign{Name: "hr", Run: run, Journal: w3, Resume: j3}).Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if err := w3.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, baseline) {
		t.Errorf("re-resumed result diverged\ngot:  %+v\nwant: %+v", res, baseline)
	}
}
