package stressor

import (
	"repro/internal/fault"
	"repro/internal/sim"
)

// Checkpointer is what a prototype runner implements to let campaigns
// fork scenarios off a golden-run checkpoint instead of re-simulating
// the fault-free prefix (Campaign.Checkpoints). The contract mirrors
// the paper's error-effect-simulation structure: scenarios differ only
// in when/where they inject, so the prefix up to the earliest
// injection instant is shared and worth snapshotting once per worker.
type Checkpointer interface {
	// ForkTime reports the injection instant scenario sc can be forked
	// from — the latest golden-run time that precedes every state
	// mutation sc performs — and whether forking is valid for it at
	// all. Runners return ok=false for scenario classes that mutate
	// pre-injection state (or when their own reuse machinery is
	// disabled); the campaign transparently falls back to the plain
	// RunFunc for those.
	ForkTime(sc fault.Scenario) (sim.Time, bool)
	// NewSession creates a private golden-run session. Each campaign
	// worker owns at most one live session; sessions are never shared
	// across goroutines.
	NewSession() CheckpointSession
}

// CheckpointSession is one worker's reusable golden-run prototype: it
// lazily simulates the golden prefix up to fork, snapshots there, and
// serves scenario runs by restoring the snapshot instead of
// rebuilding. Run must produce the exact Outcome the campaign's
// RunFunc would for the same scenario. Close releases the session's
// resources; a session the campaign abandoned (timeout, panic) is
// never Closed — its kernel must therefore hold no goroutines.
type CheckpointSession interface {
	Run(sc fault.Scenario, fork sim.Time) fault.Outcome
	Close()
}

// sessionHolder carries one worker's lazily created checkpoint
// session. nil holders (checkpointing off) are valid and inert.
type sessionHolder struct {
	c    *Campaign
	sess CheckpointSession
}

func (e *campaignExec) newHolder() *sessionHolder {
	if !e.c.Checkpoints {
		return nil
	}
	return &sessionHolder{c: e.c}
}

// close shuts the worker's session down at the end of its run loop.
func (h *sessionHolder) close() {
	if h != nil && h.sess != nil {
		h.sess.Close()
		h.sess = nil
	}
}

// abandon drops the session without closing it: a timed-out run's
// goroutine (or a panicked run's torn kernel) still owns it, so the
// worker must not touch it again — the next eligible run builds a
// fresh one. Late writes into the abandoned session can never reach a
// result or journal because the campaign already recorded the run.
func (h *sessionHolder) abandon() { h.sess = nil }

// dispatchRun executes position u on worker w, routing fork-eligible
// scenarios through the worker's checkpoint session and everything
// else through the plain RunFunc. The session is resolved here, on the
// worker goroutine, before the (possibly timeout-supervised) run
// goroutine starts — so an abandoned holder can never race with a
// late run still using the old session.
func (e *campaignExec) dispatchRun(u, w int, h *sessionHolder) (fault.Outcome, bool, bool) {
	sc := e.run[u]
	do := func() (fault.Outcome, bool) { return e.c.safeRun(sc) }
	viaSession := false
	if h != nil && e.forkOK[u] {
		if h.sess == nil {
			h.sess = e.c.Checkpointer.NewSession()
		}
		sess, fork := h.sess, e.forks[u]
		do = func() (fault.Outcome, bool) { return e.c.safeSessionRun(sess, sc, fork) }
		viaSession = true
	}
	out, panicked, timedOut := e.c.runOne(e.obs, sc, w, do)
	if viaSession && (timedOut || panicked) {
		h.abandon()
	}
	return out, panicked, timedOut
}
