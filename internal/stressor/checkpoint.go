package stressor

import (
	"sync"

	"repro/internal/fault"
	"repro/internal/sim"
)

// Checkpointer is what a prototype runner implements to let campaigns
// fork scenarios off a golden-run checkpoint instead of re-simulating
// the fault-free prefix (Campaign.Checkpoints). The contract mirrors
// the paper's error-effect-simulation structure: scenarios differ only
// in when/where they inject, so the prefix up to the earliest
// injection instant is shared and worth snapshotting once per worker.
type Checkpointer interface {
	// ForkTime reports the injection instant scenario sc can be forked
	// from — the latest golden-run time that precedes every state
	// mutation sc performs — and whether forking is valid for it at
	// all. Runners return ok=false for scenario classes that mutate
	// pre-injection state (or when their own reuse machinery is
	// disabled); the campaign transparently falls back to the plain
	// RunFunc for those.
	ForkTime(sc fault.Scenario) (sim.Time, bool)
	// NewSession creates a private golden-run session. Each campaign
	// worker owns at most one live session; sessions are never shared
	// across goroutines.
	NewSession() CheckpointSession
}

// CheckpointSession is one worker's reusable golden-run prototype: it
// lazily simulates the golden prefix up to fork, snapshots there, and
// serves scenario runs by restoring the snapshot instead of
// rebuilding. Run must produce the exact Outcome the campaign's
// RunFunc would for the same scenario. Close releases the session's
// resources; a session the campaign abandoned (timeout, panic) is
// never Closed — its kernel must therefore hold no goroutines.
type CheckpointSession interface {
	Run(sc fault.Scenario, fork sim.Time) fault.Outcome
	Close()
}

// sessionHolder carries one worker's lazily created checkpoint
// session. nil holders (checkpointing off) are valid and inert.
type sessionHolder struct {
	c    *Campaign
	sess CheckpointSession
}

func (e *campaignExec) newHolder() *sessionHolder {
	if !e.c.Checkpoints {
		return nil
	}
	return &sessionHolder{c: e.c}
}

// close shuts the worker's session down at the end of its run loop.
func (h *sessionHolder) close() {
	if h != nil && h.sess != nil {
		h.sess.Close()
		h.sess = nil
	}
}

// abandon drops the session without closing it: a timed-out run's
// goroutine (or a panicked run's torn kernel) still owns it, so the
// worker must not touch it again — the next eligible run builds a
// fresh one. Late writes into the abandoned session can never reach a
// result or journal because the campaign already recorded the run.
func (h *sessionHolder) abandon() { h.sess = nil }

// newSession builds the worker's session: a tree session when the
// campaign runs in tree or early-exit mode (Execute validated that the
// Checkpointer supports it), the plain single-checkpoint session
// otherwise. Early-exit without CheckpointTree degenerates to a
// one-node tree — plain-checkpoint forking plus convergence checks.
func (c *Campaign) newSession() CheckpointSession {
	if !c.CheckpointTree && !c.EarlyExit {
		return c.Checkpointer.NewSession()
	}
	cfg := TreeConfig{
		EarlyExit:  c.EarlyExit,
		HashStride: c.HashStride,
		Metrics:    c.Metrics,
		Campaign:   c.Name,
	}
	if !c.CheckpointTree {
		cfg.MaxNodes = 1
	}
	return c.Checkpointer.(TreeCheckpointer).NewTreeSession(cfg)
}

// recycleGuard reclaims an abandoned session's retained tree nodes
// once it is safe to do so. Abandonment races with the runaway run —
// on a timeout the run goroutine may still be mutating the session —
// so whichever of {abandon, run completion} happens second performs
// the Recycle: for a recovered panic the run has already completed
// when the worker abandons (recycle fires immediately); for a timeout
// the late goroutine recycles when it finally returns. Node buffers
// are fully overwritten on reuse, so reclaiming from a torn kernel is
// safe.
type recycleGuard struct {
	mu        sync.Mutex
	sess      RecyclableSession
	done      bool
	abandoned bool
}

// finished marks the run complete (called on the run goroutine, after
// any panic was recovered).
func (g *recycleGuard) finished() {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.done = true
	if g.abandoned {
		g.sess.Recycle()
	}
}

// abandon marks the session dropped (called on the worker goroutine).
func (g *recycleGuard) abandon() {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.abandoned = true
	if g.done {
		g.sess.Recycle()
	}
}

// dispatchRun executes position u on worker w, routing fork-eligible
// scenarios through the worker's checkpoint session and everything
// else through the plain RunFunc. The session is resolved here, on the
// worker goroutine, before the (possibly timeout-supervised) run
// goroutine starts — so an abandoned holder can never race with a
// late run still using the old session.
func (e *campaignExec) dispatchRun(u, w int, h *sessionHolder) (fault.Outcome, bool, bool) {
	sc := e.run[u]
	do := func() (fault.Outcome, bool) { return e.c.safeRun(sc) }
	viaSession := false
	var guard *recycleGuard
	if h != nil && e.forkOK[u] {
		if h.sess == nil {
			h.sess = e.c.newSession()
		}
		sess, fork := h.sess, e.forks[u]
		if rs, ok := sess.(RecyclableSession); ok {
			guard = &recycleGuard{sess: rs}
		}
		do = func() (fault.Outcome, bool) {
			out, panicked := e.c.safeSessionRun(sess, sc, fork)
			guard.finished()
			return out, panicked
		}
		viaSession = true
	}
	out, panicked, timedOut := e.c.runOne(e.obs, sc, w, do)
	if viaSession && (timedOut || panicked) {
		h.abandon()
		guard.abandon()
	}
	return out, panicked, timedOut
}
