package stressor

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
)

// TestCampaignInstrumentedDeterminism is the observability
// no-interference contract (acceptance criterion of the obs layer):
// for worker counts 0, 1 and 4, a campaign with Metrics, Trace and
// Progress all attached returns a Result identical to the bare
// sequential campaign — instrumentation observes, it never steers.
func TestCampaignInstrumentedDeterminism(t *testing.T) {
	const n = 24
	classes := pattern(n, map[int]fault.Classification{
		4: fault.SDC, 9: fault.SafetyCritical, 17: fault.TimingViolation,
	})
	run := classRunFunc(classes)
	scenarios := makeScenarios(n)
	for _, stop := range []bool{false, true} {
		baseline, err := (&Campaign{Name: "det", Run: run, StopOnFirst: stop}).Execute(scenarios)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 4} {
			c := &Campaign{
				Name: "det", Run: run, StopOnFirst: stop, Workers: workers,
				Metrics:          obs.NewRegistry(),
				Trace:            obs.NewTraceRecorder(),
				Progress:         func(obs.ProgressUpdate) {},
				ProgressInterval: -1,
			}
			got, err := c.Execute(scenarios)
			if err != nil {
				t.Fatalf("stop=%v workers=%d: %v", stop, workers, err)
			}
			if !reflect.DeepEqual(got, baseline) {
				t.Errorf("stop=%v workers=%d: instrumented result diverged\ngot:  %+v\nwant: %+v",
					stop, workers, got, baseline)
			}
		}
	}
}

// TestCampaignMetricsContent checks what an instrumented campaign
// records: deterministic outcome counters matching the tally, a
// duration histogram with one observation per included run, worker
// busy counters and a utilization gauge.
func TestCampaignMetricsContent(t *testing.T) {
	const n = 30
	classes := pattern(n, map[int]fault.Classification{3: fault.SDC, 12: fault.SDC})
	for _, workers := range []int{0, 4} {
		reg := obs.NewRegistry()
		tr := obs.NewTraceRecorder()
		c := &Campaign{Name: "m", Run: classRunFunc(classes), Workers: workers,
			Metrics: reg, Trace: tr}
		res, err := c.Execute(makeScenarios(n))
		if err != nil {
			t.Fatal(err)
		}
		name := obs.L("campaign", "m")
		for class, want := range res.Tally {
			got := reg.Counter("campaign.outcomes", name, obs.L("class", class.String())).Value()
			if got != uint64(want) {
				t.Errorf("workers=%d: outcomes{%s} = %d, want %d", workers, class, got, want)
			}
		}
		if got := reg.Counter("campaign.runs", name).Value(); got != n {
			t.Errorf("workers=%d: runs = %d, want %d", workers, got, n)
		}
		if h := reg.Histogram("campaign.scenario_duration_ns", name); h.Count() != n {
			t.Errorf("workers=%d: duration histogram count = %d, want %d", workers, h.Count(), n)
		}
		if reg.Counter("campaign.elapsed_ns", name).Value() == 0 {
			t.Errorf("workers=%d: elapsed_ns not recorded", workers)
		}
		util := reg.Gauge("campaign.worker_utilization", name).Value()
		if util <= 0 || util > 1.01 {
			t.Errorf("workers=%d: utilization = %v", workers, util)
		}
		wantSlots := workers
		if wantSlots == 0 {
			wantSlots = 1
		}
		var busySlots int
		for w := 0; w < wantSlots; w++ {
			if reg.Counter("campaign.worker_busy_ns", name, obs.L("worker", fmt.Sprint(w))).Value() > 0 {
				busySlots++
			}
		}
		if busySlots == 0 {
			t.Errorf("workers=%d: no worker recorded busy time", workers)
		}
		if tr.Len() != n {
			t.Errorf("workers=%d: trace has %d spans, want %d", workers, tr.Len(), n)
		}
	}
}

// TestCampaignPanicRecoveriesCounted: recovered panics must be
// distinguishable from genuine detected-safe outcomes — on the Result
// and in the registry — identically for every worker count.
func TestCampaignPanicRecoveriesCounted(t *testing.T) {
	const n = 12
	run := func(sc fault.Scenario) fault.Outcome {
		if sc.ID == "s3" || sc.ID == "s8" {
			panic("injector exploded")
		}
		if sc.ID == "s5" {
			// A genuine detection, to prove the two stay separate.
			return fault.Outcome{Scenario: sc, Class: fault.DetectedSafe}
		}
		return fault.Outcome{Scenario: sc, Class: fault.Masked}
	}
	for _, workers := range []int{0, 1, 4} {
		reg := obs.NewRegistry()
		c := &Campaign{Name: "p", Run: run, Workers: workers, Metrics: reg}
		res, err := c.Execute(makeScenarios(n))
		if err != nil {
			t.Fatal(err)
		}
		if res.PanicRecoveries != 2 {
			t.Errorf("workers=%d: PanicRecoveries = %d, want 2", workers, res.PanicRecoveries)
		}
		if res.Tally[fault.DetectedSafe] != 3 {
			t.Errorf("workers=%d: detected-safe tally = %d, want 3 (2 panics + 1 real)",
				workers, res.Tally[fault.DetectedSafe])
		}
		got := reg.Counter("campaign.panic_recoveries", obs.L("campaign", "p")).Value()
		if got != 2 {
			t.Errorf("workers=%d: panic_recoveries counter = %d, want 2", workers, got)
		}
	}
}

// TestCampaignProgressStream: the progress callback sees every
// completion when unthrottled, and the final update carries the
// campaign totals.
func TestCampaignProgressStream(t *testing.T) {
	const n = 16
	classes := pattern(n, map[int]fault.Classification{6: fault.SDC})
	var updates []obs.ProgressUpdate
	c := &Campaign{
		Name: "prog", Run: classRunFunc(classes),
		Progress:         func(u obs.ProgressUpdate) { updates = append(updates, u) },
		ProgressInterval: -1,
	}
	if _, err := c.Execute(makeScenarios(n)); err != nil {
		t.Fatal(err)
	}
	if len(updates) != n+1 {
		t.Fatalf("%d updates, want %d (one per run + final)", len(updates), n+1)
	}
	last := updates[len(updates)-1]
	if !last.Final || last.Completed != n || last.Total != n || last.Failures != 1 {
		t.Errorf("final update = %+v", last)
	}
	if last.Name != "prog" {
		t.Errorf("update name = %q", last.Name)
	}
}
