package stressor

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/uvm"
)

// captureInjector records inject/revert times for assertions.
type capture struct {
	injectAt []sim.Time
	revertAt []sim.Time
	k        *sim.Kernel
}

func newCaptureRegistry(k *sim.Kernel, site string) (*fault.Registry, *capture) {
	cap := &capture{k: k}
	reg := fault.NewRegistry()
	reg.MustRegister(&fault.FuncInjector{
		SiteName: site,
		Models:   []fault.Model{fault.StuckAt0, fault.StuckAt1, fault.BitFlip},
		InjectFn: func(d fault.Descriptor) error {
			cap.injectAt = append(cap.injectAt, k.Now())
			return nil
		},
		RevertFn: func(d fault.Descriptor) error {
			cap.revertAt = append(cap.revertAt, k.Now())
			return nil
		},
	})
	return reg, cap
}

func runStressor(t *testing.T, sc fault.Scenario, horizon sim.Time, site string) (*Stressor, *capture) {
	t.Helper()
	k := sim.NewKernel()
	env := uvm.NewEnv(k)
	reg, cap := newCaptureRegistry(k, site)
	topc := &struct{ uvm.Comp }{}
	uvm.NewComp(topc, nil, "top")
	s := New(topc, "stressor", reg)
	s.Horizon = horizon
	s.SetScenario(sc)
	errs := env.RunTest(topc, horizon)
	if len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
	return s, cap
}

func TestPermanentFaultInjectedOnce(t *testing.T) {
	sc := fault.Single(fault.Descriptor{
		Name: "p", Model: fault.StuckAt1, Class: fault.Permanent,
		Target: "site", Start: sim.US(3),
	})
	s, cap := runStressor(t, sc, sim.MS(1), "site")
	if len(cap.injectAt) != 1 || cap.injectAt[0] != sim.US(3) {
		t.Errorf("injectAt = %v", cap.injectAt)
	}
	if len(cap.revertAt) != 0 {
		t.Errorf("permanent fault reverted: %v", cap.revertAt)
	}
	if len(s.Records()) != 1 || !s.Records()[0].Inject {
		t.Errorf("records = %+v", s.Records())
	}
}

func TestTransientWindow(t *testing.T) {
	sc := fault.Single(fault.Descriptor{
		Name: "tr", Model: fault.StuckAt0, Class: fault.Transient,
		Target: "site", Start: sim.US(10), Duration: sim.US(5),
	})
	_, cap := runStressor(t, sc, sim.MS(1), "site")
	if len(cap.injectAt) != 1 || cap.injectAt[0] != sim.US(10) {
		t.Errorf("injectAt = %v", cap.injectAt)
	}
	if len(cap.revertAt) != 1 || cap.revertAt[0] != sim.US(15) {
		t.Errorf("revertAt = %v", cap.revertAt)
	}
}

func TestIntermittentPulses(t *testing.T) {
	sc := fault.Single(fault.Descriptor{
		Name: "int", Model: fault.StuckAt0, Class: fault.Intermittent,
		Target: "site", Start: sim.US(0), Duration: sim.US(1), Period: sim.US(10),
	})
	_, cap := runStressor(t, sc, sim.US(35), "site")
	// Windows at 0,10,20,30 — four pulses inside the 35us horizon.
	if len(cap.injectAt) != 4 {
		t.Fatalf("injectAt = %v", cap.injectAt)
	}
	for i, want := range []sim.Time{0, sim.US(10), sim.US(20), sim.US(30)} {
		if cap.injectAt[i] != want {
			t.Errorf("pulse %d at %v, want %v", i, cap.injectAt[i], want)
		}
		if cap.revertAt[i] != want+sim.US(1) {
			t.Errorf("revert %d at %v, want %v", i, cap.revertAt[i], want+sim.US(1))
		}
	}
}

func TestMultiFaultScenarioOrdering(t *testing.T) {
	sc := fault.Scenario{ID: "multi", Faults: []fault.Descriptor{
		{Name: "late", Model: fault.StuckAt0, Class: fault.Permanent, Target: "site", Start: sim.US(20)},
		{Name: "early", Model: fault.StuckAt1, Class: fault.Permanent, Target: "site", Start: sim.US(5)},
	}}
	s, cap := runStressor(t, sc, sim.MS(1), "site")
	if len(cap.injectAt) != 2 || cap.injectAt[0] != sim.US(5) || cap.injectAt[1] != sim.US(20) {
		t.Errorf("injectAt = %v", cap.injectAt)
	}
	if s.Records()[0].Fault.Name != "early" {
		t.Errorf("first record = %s", s.Records()[0].Fault.Name)
	}
}

func TestInjectionErrorRecorded(t *testing.T) {
	sc := fault.Single(fault.Descriptor{
		Name: "bad", Model: fault.StuckAt0, Class: fault.Permanent,
		Target: "no-such-site", Start: 0,
	})
	s, _ := runStressor(t, sc, sim.MS(1), "site")
	if errs := s.InjectionErrors(); len(errs) != 1 {
		t.Errorf("InjectionErrors = %v", errs)
	}
}

func TestCampaignExecute(t *testing.T) {
	classes := []fault.Classification{fault.Masked, fault.SDC, fault.DetectedSafe, fault.SafetyCritical}
	i := 0
	c := &Campaign{
		Name: "test",
		Run: func(sc fault.Scenario) fault.Outcome {
			o := fault.Outcome{Scenario: sc, Class: classes[i%len(classes)]}
			i++
			return o
		},
	}
	scenarios := make([]fault.Scenario, 4)
	for j := range scenarios {
		scenarios[j] = fault.Single(fault.Descriptor{
			Name: string(rune('a' + j)), Model: fault.BitFlip, Target: "m",
		})
	}
	res, err := c.Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Total() != 4 || res.Tally.Failures() != 2 {
		t.Errorf("tally = %v", res.Tally)
	}
	if res.RunsToFirstFailure != 2 {
		t.Errorf("RunsToFirstFailure = %d, want 2", res.RunsToFirstFailure)
	}
	if res.FailureRate() != 0.5 {
		t.Errorf("FailureRate = %v", res.FailureRate())
	}
	if got := res.ByClass(fault.SDC); len(got) != 1 {
		t.Errorf("ByClass(SDC) = %v", got)
	}
}

func TestCampaignStopOnFirst(t *testing.T) {
	runs := 0
	c := &Campaign{
		Name:        "stop",
		StopOnFirst: true,
		Run: func(sc fault.Scenario) fault.Outcome {
			runs++
			if runs == 3 {
				return fault.Outcome{Class: fault.SafetyCritical}
			}
			return fault.Outcome{Class: fault.Masked}
		},
	}
	scenarios := make([]fault.Scenario, 10)
	for j := range scenarios {
		scenarios[j] = fault.Single(fault.Descriptor{Name: string(rune('a' + j)), Target: "m"})
	}
	res, err := c.Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 3 || res.RunsToFirstFailure != 3 {
		t.Errorf("runs = %d, first = %d", runs, res.RunsToFirstFailure)
	}
	if len(res.Outcomes) != 3 {
		t.Errorf("outcomes = %d", len(res.Outcomes))
	}
}

func TestCampaignRejectsInvalidScenario(t *testing.T) {
	c := &Campaign{Name: "bad", Run: func(sc fault.Scenario) fault.Outcome { return fault.Outcome{} }}
	_, err := c.Execute([]fault.Scenario{{ID: ""}})
	if err == nil {
		t.Error("invalid scenario accepted")
	}
	var want error = err
	if want == nil || !errors.Is(err, err) {
		t.Error("error identity")
	}
}
