package stressor

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/obs"
)

func TestShardPartition(t *testing.T) {
	// Every position belongs to exactly one shard, for any count.
	const n = 13
	for count := 1; count <= 5; count++ {
		for u := 0; u < n; u++ {
			owners := 0
			for idx := 0; idx < count; idx++ {
				if (Shard{Index: idx, Count: count}).owns(u) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("count=%d: position %d owned by %d shards", count, u, owners)
			}
		}
	}
	// The zero value owns everything.
	for u := 0; u < n; u++ {
		if !(Shard{}).owns(u) {
			t.Fatalf("zero shard does not own position %d", u)
		}
	}
	for _, good := range []string{"0/1", "0/4", "3/4"} {
		sh, err := ParseShard(good)
		if err != nil {
			t.Fatalf("ParseShard(%q): %v", good, err)
		}
		if sh.String() != good {
			t.Fatalf("ParseShard(%q).String() = %q", good, sh.String())
		}
	}
	for _, bad := range []string{"", "3", "4/4", "-1/4", "0/0", "a/b", "1/2/3"} {
		if _, err := ParseShard(bad); err == nil {
			t.Fatalf("ParseShard(%q) accepted", bad)
		}
	}
}

func TestUniverseHash(t *testing.T) {
	a := makeScenarios(8)
	b := makeScenarios(8)
	if UniverseHash(a) != UniverseHash(b) {
		t.Fatal("hash not stable across identical universes")
	}
	b[3].Faults[0].Param = 0.25
	if UniverseHash(a) == UniverseHash(b) {
		t.Fatal("hash ignores fault content")
	}
	c := makeScenarios(8)
	c[0], c[1] = c[1], c[0]
	if UniverseHash(a) == UniverseHash(c) {
		t.Fatal("hash ignores scenario order")
	}
}

// shardHeader builds the journal header for one shard of a campaign.
func shardHeader(name string, s Shard, scenarios []fault.Scenario) journal.Header {
	shards := s.Count
	if shards < 1 {
		shards = 1
	}
	return journal.Header{
		Campaign: name, Shard: s.Index, Shards: shards,
		Total: len(scenarios), Universe: UniverseHash(scenarios),
	}
}

// executeShards runs tmpl once per shard, each with its own journal,
// then reads the journals back and merges them.
func executeShards(t *testing.T, tmpl Campaign, scenarios []fault.Scenario, shards int) (*Result, []*journal.Journal) {
	t.Helper()
	dir := t.TempDir()
	js := make([]*journal.Journal, shards)
	for s := 0; s < shards; s++ {
		sh := Shard{Index: s, Count: shards}
		path := filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", s))
		w, err := journal.Create(path, shardHeader(tmpl.Name, sh, scenarios))
		if err != nil {
			t.Fatal(err)
		}
		c := tmpl
		c.Shard = sh
		c.Journal = w
		if _, err := c.Execute(scenarios); err != nil {
			t.Fatalf("shard %d/%d: %v", s, shards, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if js[s], err = journal.Read(path); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := Merge(MergeSpec{StopOnFirst: tmpl.StopOnFirst, Dedup: tmpl.Dedup}, scenarios, js)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return merged, js
}

// TestCampaignShardMergeMatrix is the synthetic core of the tentpole
// guarantee: for failure patterns (none, mid, first, panic), both
// StopOnFirst modes, 2 and 4 shards, and sequential/parallel workers,
// the merged shard set is byte-identical to the unsharded sequential
// run.
func TestCampaignShardMergeMatrix(t *testing.T) {
	const n = 20
	runs := map[string]RunFunc{
		"no failures": classRunFunc(pattern(n, nil)),
		"failure mid": classRunFunc(pattern(n, map[int]fault.Classification{7: fault.SDC})),
		"failure first": classRunFunc(pattern(n, map[int]fault.Classification{
			0: fault.SafetyCritical, 13: fault.SDC,
		})),
		"panic": func(sc fault.Scenario) fault.Outcome {
			if sc.ID == "s6" {
				panic("injector exploded")
			}
			return fault.Outcome{Scenario: sc, Class: fault.Masked, Detail: "ran " + sc.ID}
		},
	}
	scenarios := makeScenarios(n)
	for name, run := range runs {
		for _, stop := range []bool{false, true} {
			baseline, err := (&Campaign{Name: "mx", Run: run, StopOnFirst: stop}).Execute(scenarios)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 4} {
				for _, workers := range []int{0, 3} {
					t.Run(fmt.Sprintf("%s/stop=%v/shards=%d/workers=%d", name, stop, shards, workers), func(t *testing.T) {
						tmpl := Campaign{Name: "mx", Run: run, StopOnFirst: stop, Workers: workers}
						merged, _ := executeShards(t, tmpl, scenarios, shards)
						if !reflect.DeepEqual(merged, baseline) {
							t.Errorf("merged result diverged\ngot:  %+v\nwant: %+v", merged, baseline)
						}
					})
				}
			}
		}
	}
}

// TestCampaignEmptyShard: a shard owning no positions (more shards
// than unique runs) completes with an empty result and an entry-less
// journal, and the merge still reproduces the baseline.
func TestCampaignEmptyShard(t *testing.T) {
	scenarios := makeScenarios(3)
	run := classRunFunc(pattern(3, nil))
	res, err := (&Campaign{Name: "e", Run: run, Shard: Shard{Index: 5, Count: 8}}).Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 0 || res.Tally.Total() != 0 {
		t.Fatalf("empty shard produced %d outcomes", len(res.Outcomes))
	}
	baseline, err := (&Campaign{Name: "e", Run: run}).Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	merged, js := executeShards(t, Campaign{Name: "e", Run: run}, scenarios, 8)
	if !reflect.DeepEqual(merged, baseline) {
		t.Errorf("8-shard merge of 3 scenarios diverged from baseline")
	}
	for s := 3; s < 8; s++ {
		if len(js[s].Entries) != 0 {
			t.Errorf("shard %d journaled %d entries for no positions", s, len(js[s].Entries))
		}
	}
}

// TestCampaignStopOnFirstShardPlacement: the cross-shard StopOnFirst
// rule must hold wherever the failure lands — in shard 0's territory
// or shard N-1's.
func TestCampaignStopOnFirstShardPlacement(t *testing.T) {
	const n = 8
	for _, failAt := range []int{6, 7} { // positions owned by shard 0 and shard 1 of 2
		run := classRunFunc(pattern(n, map[int]fault.Classification{failAt: fault.SDC}))
		scenarios := makeScenarios(n)
		baseline, err := (&Campaign{Name: "sp", Run: run, StopOnFirst: true}).Execute(scenarios)
		if err != nil {
			t.Fatal(err)
		}
		if baseline.RunsToFirstFailure != failAt+1 {
			t.Fatalf("baseline first failure at %d, want %d", baseline.RunsToFirstFailure, failAt+1)
		}
		merged, _ := executeShards(t, Campaign{Name: "sp", Run: run, StopOnFirst: true}, scenarios, 2)
		if !reflect.DeepEqual(merged, baseline) {
			t.Errorf("failAt=%d: merged StopOnFirst result diverged\ngot:  %+v\nwant: %+v", failAt, merged, baseline)
		}
	}
}

// TestCampaignDedupShardsUniquePartition: dedup must run before the
// partition — shards split the k unique runs (executing k simulations
// in total across all shards), journal only representative indices,
// and the merge reconstructs every duplicate.
func TestCampaignDedupShardsUniquePartition(t *testing.T) {
	const n, k, shards = 12, 3, 2
	scs := dedupScenarios(n, k)
	byBit := map[uint]fault.Classification{2: fault.DetectedSafe}
	var refCalls int32
	baseline, err := (&Campaign{Name: "ds", Run: contentRunFunc(byBit, &refCalls), Dedup: true}).Execute(scs)
	if err != nil {
		t.Fatal(err)
	}
	var calls int32
	tmpl := Campaign{Name: "ds", Run: contentRunFunc(byBit, &calls), Dedup: true}
	merged, js := executeShards(t, tmpl, scs, shards)
	if calls != k {
		t.Errorf("shards together ran %d simulations, want %d uniques", calls, k)
	}
	if !reflect.DeepEqual(merged, baseline) {
		t.Errorf("dedup+shard merge diverged\ngot:  %+v\nwant: %+v", merged, baseline)
	}
	if merged.DedupSavedRuns != n-k {
		t.Errorf("DedupSavedRuns = %d, want %d", merged.DedupSavedRuns, n-k)
	}
	total := 0
	for _, j := range js {
		for _, ent := range j.Entries {
			if ent.Index >= k { // representatives are the first occurrence of each bit
				t.Errorf("journal records non-representative index %d", ent.Index)
			}
		}
		total += len(j.Entries)
	}
	if total != k {
		t.Errorf("journals hold %d entries, want %d", total, k)
	}
}

// TestCampaignResumeCompletedJournal: resuming against a journal that
// already covers the whole campaign executes nothing and reproduces
// the original result exactly.
func TestCampaignResumeCompletedJournal(t *testing.T) {
	const n = 10
	scenarios := makeScenarios(n)
	classes := pattern(n, map[int]fault.Classification{4: fault.SDC})
	path := filepath.Join(t.TempDir(), "j.jsonl")
	h := shardHeader("rc", Shard{}, scenarios)
	w, err := journal.Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	var calls int32
	run := func(sc fault.Scenario) fault.Outcome {
		atomic.AddInt32(&calls, 1)
		return classRunFunc(classes)(sc)
	}
	baseline, err := (&Campaign{Name: "rc", Run: run, Journal: w}).Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	j, w2, err := journal.AppendTo(path, h)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	calls = 0
	reg := obs.NewRegistry()
	res, err := (&Campaign{Name: "rc", Run: run, Journal: w2, Resume: j, Metrics: reg}).Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("resume of a complete journal executed %d runs", calls)
	}
	if w2.Appends() != 0 {
		t.Errorf("resume of a complete journal appended %d entries", w2.Appends())
	}
	if !reflect.DeepEqual(res, baseline) {
		t.Errorf("resumed result diverged\ngot:  %+v\nwant: %+v", res, baseline)
	}
	if got := reg.Counter("campaign.resumed_skips", obs.L("campaign", "rc")).Value(); got != n {
		t.Errorf("resumed_skips = %d, want %d", got, n)
	}
}

// TestCampaignResumeAfterHalt: a campaign halted mid-flight (the
// SIGINT path) resumes from its journal and finishes with the exact
// result an uninterrupted run produces, for sequential and parallel
// execution.
func TestCampaignResumeAfterHalt(t *testing.T) {
	const n, haltAfter = 14, 4
	scenarios := makeScenarios(n)
	run := classRunFunc(pattern(n, map[int]fault.Classification{9: fault.SDC}))
	baseline, err := (&Campaign{Name: "rh", Run: run}).Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j.jsonl")
			h := shardHeader("rh", Shard{}, scenarios)
			w, err := journal.Create(path, h)
			if err != nil {
				t.Fatal(err)
			}
			c := &Campaign{
				Name: "rh", Run: run, Workers: workers, Journal: w,
				Halt: func(completed int) bool { return completed >= haltAfter },
			}
			partial, err := c.Execute(scenarios)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if len(partial.Outcomes) >= n {
				t.Fatalf("halt did not interrupt: %d outcomes", len(partial.Outcomes))
			}
			j, w2, err := journal.AppendTo(path, h)
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			if len(j.Entries) == 0 {
				t.Fatal("halted campaign journaled nothing")
			}
			res, err := (&Campaign{Name: "rh", Run: run, Workers: workers, Journal: w2, Resume: j}).Execute(scenarios)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, baseline) {
				t.Errorf("resumed result diverged\ngot:  %+v\nwant: %+v", res, baseline)
			}
			if len(j.Entries)+w2.Appends() != n {
				t.Errorf("journal covers %d+%d runs, want %d", len(j.Entries), w2.Appends(), n)
			}
		})
	}
}

// TestCampaignShardResumeMerge: one shard of a set is interrupted,
// resumed to completion, and the merged set still matches the
// unsharded baseline — the full tentpole flow in miniature.
func TestCampaignShardResumeMerge(t *testing.T) {
	const n, shards = 20, 2
	scenarios := makeScenarios(n)
	run := classRunFunc(pattern(n, map[int]fault.Classification{11: fault.TimingViolation}))
	baseline, err := (&Campaign{Name: "srm", Run: run}).Execute(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	js := make([]*journal.Journal, shards)
	for s := 0; s < shards; s++ {
		sh := Shard{Index: s, Count: shards}
		h := shardHeader("srm", sh, scenarios)
		path := filepath.Join(dir, fmt.Sprintf("s%d.jsonl", s))
		w, err := journal.Create(path, h)
		if err != nil {
			t.Fatal(err)
		}
		c := &Campaign{Name: "srm", Run: run, Shard: sh, Journal: w}
		if s == 0 { // interrupt shard 0 after three runs
			c.Halt = func(completed int) bool { return completed >= 3 }
		}
		if _, err := c.Execute(scenarios); err != nil {
			t.Fatal(err)
		}
		w.Close()
		if s == 0 { // ...and resume it to completion
			j, w2, err := journal.AppendTo(path, h)
			if err != nil {
				t.Fatal(err)
			}
			c := &Campaign{Name: "srm", Run: run, Shard: sh, Journal: w2, Resume: j}
			if _, err := c.Execute(scenarios); err != nil {
				t.Fatal(err)
			}
			w2.Close()
		}
		if js[s], err = journal.Read(path); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := Merge(MergeSpec{}, scenarios, js)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, baseline) {
		t.Errorf("shard+resume+merge diverged\ngot:  %+v\nwant: %+v", merged, baseline)
	}
}

// TestCampaignScenarioTimeout: a hung scenario classifies as timeout
// (with the budget in the detail), the campaign completes everything
// else, StopOnFirst ignores it, the timeout counter records it, and
// the journal carries it for resume.
func TestCampaignScenarioTimeout(t *testing.T) {
	const n = 6
	block := make(chan struct{})
	defer close(block)
	run := func(sc fault.Scenario) fault.Outcome {
		if sc.ID == "s2" {
			<-block // hangs until the test ends
		}
		return fault.Outcome{Scenario: sc, Class: fault.Masked, Detail: "ran " + sc.ID}
	}
	for _, workers := range []int{0, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			scenarios := makeScenarios(n)
			path := filepath.Join(t.TempDir(), "j.jsonl")
			w, err := journal.Create(path, shardHeader("to", Shard{}, scenarios))
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			c := &Campaign{
				Name: "to", Run: run, Workers: workers, StopOnFirst: true,
				ScenarioTimeout: 50 * time.Millisecond, Journal: w, Metrics: reg,
			}
			res, err := c.Execute(scenarios)
			if err != nil {
				t.Fatal(err)
			}
			w.Close()
			if len(res.Outcomes) != n {
				t.Fatalf("campaign did not complete past the timeout: %d of %d outcomes", len(res.Outcomes), n)
			}
			o := res.Outcomes[2]
			if o.Class != fault.Timeout || !strings.Contains(o.Detail, "wall-clock budget") {
				t.Errorf("timed-out outcome = %+v", o)
			}
			if res.Tally[fault.Timeout] != 1 || res.Tally[fault.Masked] != n-1 {
				t.Errorf("tally = %v", res.Tally)
			}
			if got := reg.Counter("campaign.timeouts", obs.L("campaign", "to")).Value(); got != 1 {
				t.Errorf("timeouts counter = %d, want 1", got)
			}
			j, err := journal.Read(path)
			if err != nil {
				t.Fatal(err)
			}
			if ent := j.ByIndex()[2]; ent.Class != fault.Timeout.String() {
				t.Errorf("journaled class = %q, want timeout", ent.Class)
			}
		})
	}
}

// TestCampaignResumeRejects: a journal from the wrong campaign, wrong
// shard, wrong universe, or with entries that contradict the universe
// must fail before any run executes.
func TestCampaignResumeRejects(t *testing.T) {
	scenarios := makeScenarios(6)
	run := classRunFunc(pattern(6, nil))
	mkJournal := func(h journal.Header, entries ...journal.Entry) *journal.Journal {
		t.Helper()
		path := filepath.Join(t.TempDir(), "j.jsonl")
		w, err := journal.Create(path, h)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if err := w.Append(e); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		j, err := journal.Read(path)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	good := shardHeader("rr", Shard{}, scenarios)
	cases := []struct {
		name string
		c    Campaign
		j    *journal.Journal
	}{
		{"wrong campaign", Campaign{Name: "rr"}, mkJournal(journal.Header{
			Campaign: "other", Shards: 1, Total: 6, Universe: good.Universe})},
		{"wrong shard", Campaign{Name: "rr"}, mkJournal(journal.Header{
			Campaign: "rr", Shard: 1, Shards: 2, Total: 6, Universe: good.Universe})},
		{"wrong universe", Campaign{Name: "rr"}, mkJournal(journal.Header{
			Campaign: "rr", Shards: 1, Total: 6, Universe: "0000000000000000"})},
		{"wrong scenario ID", Campaign{Name: "rr"}, mkJournal(good,
			journal.Entry{Index: 0, ID: "not-s0", Class: "masked"})},
		{"unknown class", Campaign{Name: "rr"}, mkJournal(good,
			journal.Entry{Index: 0, ID: "s0", Class: "exploded"})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var calls int32
			c := tc.c
			c.Run = func(sc fault.Scenario) fault.Outcome {
				atomic.AddInt32(&calls, 1)
				return run(sc)
			}
			c.Resume = tc.j
			if _, err := c.Execute(scenarios); err == nil {
				t.Fatal("mismatched journal accepted")
			}
			if calls != 0 {
				t.Errorf("%d runs executed before the journal was rejected", calls)
			}
		})
	}
	// A journal written without dedup cannot resume a dedup campaign:
	// its entries sit at non-representative indices.
	scs := dedupScenarios(6, 2)
	h := shardHeader("rd", Shard{}, scs)
	j := mkJournal(h, journal.Entry{Index: 3, ID: "d3", Class: "masked"})
	c := Campaign{Name: "rd", Run: run, Dedup: true, Resume: j}
	if _, err := c.Execute(scs); err == nil {
		t.Fatal("non-representative journal entry accepted under dedup")
	}
}

// TestMergeRejects: merging must refuse truncated journals, missing
// shards, duplicate shards, foreign universes, incomplete coverage and
// conflicting outcomes.
func TestMergeRejects(t *testing.T) {
	const n, shards = 8, 2
	scenarios := makeScenarios(n)
	run := classRunFunc(pattern(n, nil))
	_, js := executeShards(t, Campaign{Name: "mr", Run: run}, scenarios, shards)

	if _, err := Merge(MergeSpec{}, scenarios, nil); err == nil {
		t.Error("merge of zero journals accepted")
	}
	if _, err := Merge(MergeSpec{}, scenarios, js[:1]); err == nil {
		t.Error("missing shard accepted")
	}
	if _, err := Merge(MergeSpec{}, scenarios, []*journal.Journal{js[0], js[0]}); err == nil {
		t.Error("duplicate shard accepted")
	}
	trunc := *js[1]
	trunc.Truncated = true
	if _, err := Merge(MergeSpec{}, scenarios, []*journal.Journal{js[0], &trunc}); err == nil {
		t.Error("truncated journal accepted")
	}
	if _, err := Merge(MergeSpec{}, makeScenarios(n+1), js); err == nil {
		t.Error("foreign universe accepted")
	}
	// Incomplete coverage: drop one entry from shard 1.
	short := *js[1]
	short.Entries = short.Entries[:len(short.Entries)-1]
	if _, err := Merge(MergeSpec{}, scenarios, []*journal.Journal{js[0], &short}); err == nil {
		t.Error("incomplete shard accepted")
	}
	// Conflict: shard 1 re-records shard 0's scenario with another class.
	conflict := *js[1]
	conflict.Entries = append(append([]journal.Entry{}, conflict.Entries...),
		journal.Entry{Index: 0, ID: "s0", Class: "sdc", Detail: "ran s0"})
	if _, err := Merge(MergeSpec{}, scenarios, []*journal.Journal{js[0], &conflict}); err == nil {
		t.Error("conflicting outcomes accepted")
	}
}
