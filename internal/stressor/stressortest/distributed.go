package stressortest

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/stressor"
)

// Distributed-cell timings: short enough that a killed worker's lease
// expires within the test, long enough that heartbeats always make the
// deadline under -race.
const (
	distTTL       = 250 * time.Millisecond
	distSteal     = 500 * time.Millisecond
	distHeartbeat = 20 * time.Millisecond
	distPoll      = 5 * time.Millisecond
)

// runDistributed adds the fabric axis to the determinism matrix: the
// campaign partitioned into shard leases and executed by two real
// workers over HTTP — once on the happy path, once with one worker
// killed mid-lease so the survivor resumes its shard from the last
// flushed entry. Both cells must reproduce the sequential reference
// Result exactly.
func runDistributed(t *testing.T, cfg Config, ref *stressor.Result) {
	for _, kill := range []bool{false, true} {
		name := "distributed/workers=2"
		if kill {
			name = "distributed/kill"
		}
		kill := kill
		t.Run(name, func(t *testing.T) {
			coord, err := fabric.NewCoordinator(fabric.CoordConfig{
				Campaign: cfg.Name, Scenarios: cfg.Scenarios, Shards: 4,
				Dedup: cfg.Dedup, StopOnFirst: cfg.StopOnFirst,
				DataDir: t.TempDir(), LeaseTTL: distTTL, StealAfter: distSteal,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()
			srv := httptest.NewServer(coord.Handler())
			defer srv.Close()

			// Each worker gets its own engine instance from cfg.NewRun,
			// exactly like separate worker processes on separate machines.
			newWorker := func(name string, wrap func(stressor.RunFunc) stressor.RunFunc) *fabric.Worker {
				run, _, cleanup := cfg.NewRun(t, false)
				t.Cleanup(cleanup)
				if wrap != nil {
					run = wrap(run)
				}
				w, err := fabric.NewWorker(fabric.WorkerConfig{
					Name: name, Coordinator: srv.URL,
					Resolve: func(json.RawMessage) (*fabric.Resolved, error) {
						return &fabric.Resolved{
							Scenarios: cfg.Scenarios,
							Campaign:  &stressor.Campaign{Run: run},
						}, nil
					},
					Heartbeat: distHeartbeat, Poll: distPoll,
				})
				if err != nil {
					t.Fatal(err)
				}
				return w
			}

			ctx := context.Background()
			var wg sync.WaitGroup
			runWorker := func(w *fabric.Worker) {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := w.Run(ctx); err != nil {
						t.Errorf("worker: %v", err)
					}
				}()
			}

			if kill {
				// The victim's run function kills its own worker after
				// InterruptAfter scenarios, first sleeping long enough for a
				// heartbeat to carry the completed entries out — the
				// survivor must RESUME the shard, not restart it. The victim
				// claims its lease before the survivor starts so the kill
				// lands mid-campaign.
				var victim *fabric.Worker
				var runs atomic.Int32
				victim = newWorker("victim", func(run stressor.RunFunc) stressor.RunFunc {
					return func(sc fault.Scenario) fault.Outcome {
						if int(runs.Add(1)) == cfg.InterruptAfter {
							time.Sleep(3 * distHeartbeat)
							victim.Kill()
						}
						return run(sc)
					}
				})
				runWorker(victim)
				deadline := time.Now().Add(10 * time.Second)
				for runs.Load() < 1 {
					if time.Now().After(deadline) {
						t.Fatal("victim never started running")
					}
					time.Sleep(time.Millisecond)
				}
				runWorker(newWorker("survivor", nil))
			} else {
				runWorker(newWorker("w1", nil))
				runWorker(newWorker("w2", nil))
			}
			wg.Wait()

			got, done, err := coord.Result()
			if err != nil || !done {
				t.Fatalf("done=%v err=%v", done, err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("distributed result diverged from reference\ngot:  %+v\nwant: %+v", got, ref)
			}
		})
	}
}
