package stressortest

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stressor"
)

// AdaptiveConfig describes one adaptive determinism matrix: the same
// Novelty strategy, seeded identically per cell, driven through
// stressor.AdaptiveCampaign across worker counts and an
// interrupt/resume leg. Every cell must reproduce the reference
// (sequential, fresh) byte-for-byte — the closed feedback loop makes
// this a much stronger claim than the fixed-universe matrix, because
// any ordering leak changes what the strategy proposes next, not just
// the order results are collected in.
type AdaptiveConfig struct {
	// Name labels the campaign.
	Name string
	// Universe seeds the Novelty strategy; every cell rebuilds the
	// strategy from it with the same Seed.
	Universe []fault.Descriptor
	// NewRun builds the cell's signed RunFunc (the runner's
	// SignedRunFunc) and a cleanup. Called once per cell.
	NewRun func(t *testing.T, reuseOff bool) (stressor.RunFunc, func())
	// Budget is the simulated-run budget per cell (default 24).
	Budget int
	// Seed fixes the strategy RNG (default 1).
	Seed int64
	// Window bounds mutant retiming (default 1 ms).
	Window sim.Time
	// Workers are the worker counts to cross (default {0, 4}).
	Workers []int
	// InterruptAfter is the delivered-outcome count at which resumed
	// cells simulate an interrupt (default 5).
	InterruptAfter int
}

// RunAdaptive executes the adaptive matrix: reference = rebuild/
// sequential/fresh; cells cross {workers} × {rebuild, reuse} ×
// {fresh, interrupted+resumed} and must all DeepEqual the reference.
func RunAdaptive(t *testing.T, cfg AdaptiveConfig) {
	if cfg.Budget == 0 {
		cfg.Budget = 24
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Window == 0 {
		cfg.Window = sim.MS(1)
	}
	if cfg.Workers == nil {
		cfg.Workers = []int{0, 4}
	}
	if cfg.InterruptAfter == 0 {
		cfg.InterruptAfter = 5
	}
	fingerprint := stressor.UniverseHash(fault.Singles(cfg.Universe))

	// newSource rebuilds the identically-configured strategy for one
	// cell. The Novelty proposal budget is deliberately larger than
	// the engine budget so MaxRuns is always the terminating bound and
	// pruned (budget-free) proposals cannot starve the stream.
	newSource := func() *scenario.Novelty {
		n := scenario.NewNovelty(cfg.Universe, 4*cfg.Budget, rand.New(rand.NewSource(cfg.Seed)))
		n.Mutator().Window = cfg.Window
		return n
	}

	header := journal.Header{
		Campaign: cfg.Name,
		Total:    cfg.Budget,
		Shards:   1,
		Universe: fingerprint,
		Adaptive: true,
	}

	// runCell executes one cell, journaled; when interrupt is set it
	// halts after InterruptAfter delivered outcomes, reopens the
	// journal and resumes with a fresh, identically-seeded source.
	runCell := func(t *testing.T, workers int, reuseOff, interrupt bool) *stressor.AdaptiveResult {
		run, cleanup := cfg.NewRun(t, reuseOff)
		defer cleanup()
		path := filepath.Join(t.TempDir(), "adaptive.journal")
		w, err := journal.Create(path, header)
		if err != nil {
			t.Fatal(err)
		}
		c := &stressor.AdaptiveCampaign{
			Name:        cfg.Name,
			Run:         run,
			Source:      newSource(),
			Workers:     workers,
			MaxRuns:     cfg.Budget,
			Prune:       true,
			Journal:     w,
			Fingerprint: fingerprint,
		}
		if interrupt {
			c.Halt = func(done int) bool { return done >= cfg.InterruptAfter }
		}
		res, err := c.Execute()
		if err != nil {
			t.Fatal(err)
		}
		if cerr := w.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if !interrupt {
			return res
		}
		if !res.Halted {
			t.Fatalf("interrupt leg: campaign was not halted (delivered %d)", res.Proposed)
		}
		j, w2, err := journal.AppendTo(path, header)
		if err != nil {
			t.Fatal(err)
		}
		defer w2.Close()
		c2 := &stressor.AdaptiveCampaign{
			Name:        cfg.Name,
			Run:         run,
			Source:      newSource(),
			Workers:     workers,
			MaxRuns:     cfg.Budget,
			Prune:       true,
			Journal:     w2,
			Resume:      j,
			Fingerprint: fingerprint,
		}
		res2, err := c2.Execute()
		if err != nil {
			t.Fatal(err)
		}
		return res2
	}

	var ref *stressor.AdaptiveResult
	t.Run("reference", func(t *testing.T) {
		ref = runCell(t, 0, true, false)
		if ref.Simulated != cfg.Budget {
			t.Fatalf("reference simulated %d runs, want the full budget %d", ref.Simulated, cfg.Budget)
		}
		if ref.UniqueSignatures < 2 {
			t.Fatalf("reference found %d unique signatures; the universe is degenerate", ref.UniqueSignatures)
		}
	})
	if ref == nil {
		t.Fatal("reference cell did not run")
	}

	// normalize strips the fields that legitimately differ on the
	// resumed leg: the second Execute simulates only the tail
	// (Simulated shrinks, ResumedSkips grows by the same amount) and
	// is never itself halted. Everything behavioral — the outcome
	// stream, tally, signature census, prune census — must match.
	normalize := func(r *stressor.AdaptiveResult) stressor.AdaptiveResult {
		c := *r
		c.Simulated, c.ResumedSkips, c.Halted = 0, 0, false
		return c
	}

	for _, workers := range cfg.Workers {
		for _, reuseOff := range []bool{true, false} {
			for _, interrupt := range []bool{false, true} {
				name := fmt.Sprintf("w%d", workers)
				if reuseOff {
					name += "-rebuild"
				} else {
					name += "-reuse"
				}
				if interrupt {
					name += "-resumed"
				} else {
					name += "-fresh"
				}
				t.Run(name, func(t *testing.T) {
					got := runCell(t, workers, reuseOff, interrupt)
					if interrupt {
						if got.Simulated+got.ResumedSkips != ref.Simulated {
							t.Errorf("resumed cell simulated %d + resumed %d != reference %d",
								got.Simulated, got.ResumedSkips, ref.Simulated)
						}
					} else if got.Simulated != ref.Simulated {
						t.Errorf("simulated %d runs, reference %d", got.Simulated, ref.Simulated)
					}
					gn, rn := normalize(got), normalize(ref)
					if !reflect.DeepEqual(gn, rn) {
						t.Errorf("cell diverged from reference:\n got: %+v\nwant: %+v", gn, rn)
					}
				})
			}
		}
	}
}
