// Package stressortest provides the cross-mode determinism matrix
// shared by the campaign-engine integrations: one table-driven suite
// asserting that a campaign's Result is byte-identical across
// {sequential, parallel} × {rebuild, reuse, checkpointed, tree,
// tree+early-exit, early-exit-only} × {unsharded, N-shard merged} ×
// {fresh, resumed-after-simulated-interrupt}, plus a distributed axis
// running the campaign through the fabric coordinator with two real
// workers — once cleanly and once with a worker killed mid-lease. The
// CAPS and ECU runners both run it against their real prototypes,
// replacing per-package ad-hoc pairwise checks.
package stressortest

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/stressor"
)

// Config describes one determinism matrix.
type Config struct {
	// Name labels the campaign.
	Name string
	// Scenarios is the universe every cell executes.
	Scenarios []fault.Scenario
	// NewRun builds a RunFunc for one cell (reuseOff selects the
	// rebuild-per-run path where the engine supports it), the engine's
	// Checkpointer (nil when it has none — checkpointed cells are then
	// skipped) and a cleanup. It is called once per cell, so pooled
	// engines get a fresh pool each time.
	NewRun func(t *testing.T, reuseOff bool) (stressor.RunFunc, stressor.Checkpointer, func())
	// Workers are the worker counts to cross (default {0, 2}).
	Workers []int
	// Shards are the shard counts to cross; 1 means unsharded
	// (default {1, 2, 4}).
	Shards []int
	// Dedup and StopOnFirst apply to every cell.
	Dedup       bool
	StopOnFirst bool
	// InterruptAfter is the completed-run count at which resumed
	// cells simulate an interrupt (default 3).
	InterruptAfter int
}

// Run executes the matrix: the reference cell is rebuild/sequential/
// unsharded/fresh, and every other cell must reproduce its Result
// exactly.
func Run(t *testing.T, cfg Config) {
	if cfg.Workers == nil {
		cfg.Workers = []int{0, 2}
	}
	if cfg.Shards == nil {
		cfg.Shards = []int{1, 2, 4}
	}
	if cfg.InterruptAfter == 0 {
		cfg.InterruptAfter = 3
	}
	refRun, _, cleanup := cfg.NewRun(t, true)
	ref, err := (&stressor.Campaign{
		Name: cfg.Name, Run: refRun, Dedup: cfg.Dedup, StopOnFirst: cfg.StopOnFirst,
	}).Execute(cfg.Scenarios)
	cleanup()
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	if len(ref.Outcomes) == 0 {
		t.Fatal("reference campaign produced no outcomes — matrix would pass vacuously")
	}
	runDistributed(t, cfg, ref)
	for _, reuseOff := range []bool{true, false} {
		for _, mode := range cellModes {
			if mode.checkpoints && reuseOff {
				// Checkpoint sessions build on the reuse machinery; the
				// rebuild path has nothing to fork from.
				continue
			}
			for _, workers := range cfg.Workers {
				for _, shards := range cfg.Shards {
					for _, resumed := range []bool{false, true} {
						name := fmt.Sprintf("reuse=%v/mode=%s/workers=%d/shards=%d/resumed=%v",
							!reuseOff, mode.name, workers, shards, resumed)
						if reuseOff && workers == 0 && shards == 1 && !resumed {
							continue // the reference cell itself
						}
						reuseOff, mode, workers, shards, resumed := reuseOff, mode, workers, shards, resumed
						t.Run(name, func(t *testing.T) {
							run, cp, cleanup := cfg.NewRun(t, reuseOff)
							defer cleanup()
							if mode.checkpoints && cp == nil {
								t.Skip("engine has no Checkpointer")
							}
							if mode.tree || mode.earlyExit {
								if _, ok := cp.(stressor.TreeCheckpointer); !ok {
									t.Skip("Checkpointer does not implement TreeCheckpointer")
								}
							}
							if !mode.checkpoints {
								cp = nil
							}
							got := executeCell(t, cfg, run, cp, mode, workers, shards, resumed)
							if !reflect.DeepEqual(got, ref) {
								t.Errorf("result diverged from reference\ngot:  %+v\nwant: %+v", got, ref)
							}
						})
					}
				}
			}
		}
	}
}

// cellMode is the checkpointing axis of the matrix: classifications
// must be byte-identical whether runs rebuild from scratch, fork from
// one checkpoint, fork from a retained tree node, or early-exit the
// moment they provably re-converge with the golden trajectory.
type cellMode struct {
	name        string
	checkpoints bool
	tree        bool
	earlyExit   bool
}

var cellModes = []cellMode{
	{name: "plain"},
	{name: "checkpoints", checkpoints: true},
	{name: "tree", checkpoints: true, tree: true},
	{name: "tree+ee", checkpoints: true, tree: true, earlyExit: true},
	{name: "ee", checkpoints: true, earlyExit: true},
}

// executeCell runs one matrix cell: all shards of the campaign (with
// shard 0 interrupted and resumed when resumed is set), merged back
// into one Result when sharded.
func executeCell(t *testing.T, cfg Config, run stressor.RunFunc, cp stressor.Checkpointer, mode cellMode, workers, shards int, resumed bool) *stressor.Result {
	t.Helper()
	dir := t.TempDir()
	campaign := func(sh stressor.Shard, w *journal.Writer, j *journal.Journal, halt func(int) bool) *stressor.Campaign {
		return &stressor.Campaign{
			Name: cfg.Name, Run: run, Workers: workers,
			Dedup: cfg.Dedup, StopOnFirst: cfg.StopOnFirst,
			Checkpoints: cp != nil, Checkpointer: cp,
			CheckpointTree: cp != nil && mode.tree,
			EarlyExit:      cp != nil && mode.earlyExit,
			Shard:          sh, Journal: w, Resume: j, Halt: halt,
		}
	}
	header := func(sh stressor.Shard) journal.Header {
		n := sh.Count
		if n < 1 {
			n = 1
		}
		return journal.Header{
			Campaign: cfg.Name, Shard: sh.Index, Shards: n,
			Total: len(cfg.Scenarios), Universe: stressor.UniverseHash(cfg.Scenarios),
		}
	}
	// runShard executes one shard (journaled, so every cell also
	// proves journaling never perturbs the result), optionally
	// interrupting after cfg.InterruptAfter runs and resuming from the
	// journal. It returns the final Execute's Result and the journal.
	runShard := func(sh stressor.Shard, interrupt bool) (*stressor.Result, *journal.Journal) {
		path := filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", sh.Index))
		h := header(sh)
		w, err := journal.Create(path, h)
		if err != nil {
			t.Fatal(err)
		}
		var halt func(int) bool
		if interrupt {
			halt = func(completed int) bool { return completed >= cfg.InterruptAfter }
		}
		res, err := campaign(sh, w, nil, halt).Execute(cfg.Scenarios)
		if err != nil {
			t.Fatalf("shard %s: %v", sh, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if interrupt {
			j, w2, err := journal.AppendTo(path, h)
			if err != nil {
				t.Fatal(err)
			}
			if res, err = campaign(sh, w2, j, nil).Execute(cfg.Scenarios); err != nil {
				t.Fatalf("shard %s resume: %v", sh, err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
		}
		j, err := journal.Read(path)
		if err != nil {
			t.Fatal(err)
		}
		return res, j
	}
	if shards <= 1 {
		res, _ := runShard(stressor.Shard{}, resumed)
		return res
	}
	js := make([]*journal.Journal, shards)
	for s := 0; s < shards; s++ {
		_, js[s] = runShard(stressor.Shard{Index: s, Count: shards}, resumed && s == 0)
	}
	merged, err := stressor.Merge(stressor.MergeSpec{
		StopOnFirst: cfg.StopOnFirst, Dedup: cfg.Dedup,
	}, cfg.Scenarios, js)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return merged
}
