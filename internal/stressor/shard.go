package stressor

import (
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"

	"repro/internal/fault"
)

// Shard selects one partition of a campaign's scenario universe so
// that Count independent invocations — separate processes, separate
// machines — together cover exactly the runs one unsharded invocation
// would execute. The partition is applied AFTER dedup: shards split
// the unique-run positions round-robin (position u belongs to shard
// u mod Count), so duplicate folding is identical on every shard and
// the merged result is byte-identical to the unsharded run.
//
// The zero value (and any Count <= 1) means unsharded.
type Shard struct {
	// Index is this invocation's shard number, 0-based.
	Index int
	// Count is the total number of shards.
	Count int
}

// Enabled reports whether the shard actually partitions (Count > 1).
func (s Shard) Enabled() bool { return s.Count > 1 }

// validate reports structural problems; the zero value is valid.
func (s Shard) validate() error {
	switch {
	case s.Count == 0 && s.Index == 0:
		return nil
	case s.Count < 1:
		return fmt.Errorf("shard count %d, want >= 1", s.Count)
	case s.Index < 0 || s.Index >= s.Count:
		return fmt.Errorf("shard index %d out of range 0..%d", s.Index, s.Count-1)
	}
	return nil
}

// owns reports whether unique-run position u belongs to this shard.
func (s Shard) owns(u int) bool {
	return s.Count <= 1 || u%s.Count == s.Index
}

// String renders the shard in the "i/N" command-line syntax.
func (s Shard) String() string {
	if s.Count <= 1 {
		return "0/1"
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// ParseShard parses the "i/N" command-line syntax (e.g. "0/4").
func ParseShard(s string) (Shard, error) {
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("stressor: bad shard %q, want i/N (e.g. 0/4)", s)
	}
	idx, err1 := strconv.Atoi(i)
	cnt, err2 := strconv.Atoi(n)
	if err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("stressor: bad shard %q, want i/N (e.g. 0/4)", s)
	}
	sh := Shard{Index: idx, Count: cnt}
	// The struct zero value means "unsharded", but the textual form
	// must always be explicit: "0/0" is a typo, not a campaign.
	if cnt < 1 {
		return Shard{}, fmt.Errorf("stressor: shard count %d, want >= 1", cnt)
	}
	if err := sh.validate(); err != nil {
		return Shard{}, fmt.Errorf("stressor: %w", err)
	}
	return sh, nil
}

// OwnedIndices returns the scenario indices (into the full, pre-dedup
// universe) of the unique-run positions shard sh owns under the given
// dedup setting — the exact set of runs that shard executes and
// journals. With the zero Shard it lists every unique-run
// representative. Distributed coordinators use it to size shard
// progress totals and validate streamed journal entries without
// re-deriving the engine's partition rules.
func OwnedIndices(scenarios []fault.Scenario, dedup bool, sh Shard) []int {
	var uniq []int
	if dedup {
		// Mirror Execute/Merge: a plan that saves nothing is discarded,
		// so positions stay the plain scenario indices.
		if u, _ := dedupPlan(scenarios); len(u) < len(scenarios) {
			uniq = u
		}
	}
	total := len(scenarios)
	if uniq != nil {
		total = len(uniq)
	}
	var out []int
	for u := 0; u < total; u++ {
		if !sh.owns(u) {
			continue
		}
		if uniq != nil {
			out = append(out, uniq[u])
		} else {
			out = append(out, u)
		}
	}
	return out
}

// UniverseHash fingerprints a scenario universe: IDs, fault names and
// the full fault content of every scenario, in order. Journals carry
// it so a journal can never be resumed or merged against a different
// universe (changed fault list, reordered scenarios, different world).
func UniverseHash(scenarios []fault.Scenario) string {
	h := fnv.New64a()
	for _, sc := range scenarios {
		io.WriteString(h, sc.ID)
		h.Write([]byte{0x00})
		for _, d := range sc.Faults {
			io.WriteString(h, d.Name)
			h.Write([]byte{0x01})
			io.WriteString(h, descKey(d))
			h.Write([]byte{0x02})
		}
		h.Write([]byte{'\n'})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
