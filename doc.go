// Package govp is a virtual-prototype safety-evaluation framework for
// automotive electronics in pure Go: a reproduction of the system
// envisioned by Oetjens et al., "Safety Evaluation of Automotive
// Electronics Using Virtual Prototypes: State of the Art and Research
// Challenges" (DAC 2014).
//
// The framework stacks, bottom-up:
//
//   - internal/sim — a deterministic discrete-event kernel with
//     SystemC (IEEE 1666) scheduling semantics;
//   - internal/tlm — TLM-2.0-style transaction-level modeling with the
//     full abstraction ladder, DMI and temporal decoupling;
//   - internal/rtl — gate-level netlists, a levelized evaluator with
//     stuck-at/open fault overlays and a synthesizable circuit library;
//   - internal/uvm — a UVM testbench library (components, phases,
//     sequences, factory, config DB, analysis ports, scoreboards);
//   - internal/fault, internal/stressor — formal fault descriptors,
//     injector interfaces and the campaign engine;
//   - internal/missionprofile — Mission Profiles with supply-chain
//     refinement and fault-description derivation (the paper's Fig. 2);
//   - internal/safety — FTA, FMEDA (ISO 26262 metrics) and FPTC;
//   - internal/coverage, internal/scenario — fault-space coverage
//     models and exhaustive/Monte-Carlo/weak-spot-guided strategies;
//   - internal/mdl, internal/mutation — a behavioural model language
//     and mutation analysis for testbench qualification;
//   - internal/ecu, internal/can — a virtual ECU (AE32 ISA, ECC RAM,
//     watchdog, lockstep, RTOS-lite) and a CAN network model;
//   - internal/caps — the CAPS airbag case study (the paper's Fig. 1);
//   - internal/analysis, internal/experiments — outcome classification,
//     fault-tree synthesis from simulation and the E1–E9, F2/F3 and X1–X3
//     reproduction experiments.
//
// The benchmarks in bench_test.go regenerate every experiment; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for paper-vs-
// measured results.
package govp
