// Virtual ECU demo: an AE32 program runs under the three classic
// hardware safety mechanisms — SECDED ECC memory, a windowed
// watchdog, and dual-core lockstep — while SEUs are injected into
// memory and registers. Run with:
//
//	go run ./examples/virtual_ecu
package main

import (
	"fmt"

	"repro/internal/ecu"
	"repro/internal/sim"
	"repro/internal/tlm"
)

// program: control loop computing a running checksum of a lookup
// table into RAM and kicking the watchdog (a store to 0x8000) each
// iteration.
const program = `
	addi r1, r0, 0      ; i
	addi r2, r0, 64     ; n
	addi r3, r0, 0      ; acc
loop:
	shl  r4, r1, r6     ; r6=2 -> i*4 (set by loader)
	lw   r5, 1024(r4)   ; table[i]
	add  r3, r3, r5
	sw   r3, 0(r8)      ; publish acc at 0x800
	sw   r0, 0(r7)      ; kick watchdog at 0x8000
	addi r1, r1, 1
	blt  r1, r2, loop
	halt
`

func buildCore(name string, k *sim.Kernel, wd *ecu.Watchdog) (*ecu.CPU, *ecu.ECCMemory) {
	cpu := ecu.NewCPU(name)
	ram := ecu.NewECCMemory(name+".eccram", 0, 64*1024)
	bus := tlm.NewRouter(name + ".bus")
	bus.MustMap("ram", 0, 0x8000, ram)
	if wd != nil {
		bus.MustMap("wd", 0x8000, 0x100, wd)
	} else {
		bus.MustMap("wdshadow", 0x8000, 0x100, tlm.NewMemory(name+".wdshadow", 0x8000, 0x100))
	}
	cpu.Bus.Bind(bus)
	words := ecu.MustAssemble(program)
	ecu.LoadProgram(ram, 0x4000, words)
	// Lookup table at 0x400.
	for i := 0; i < 64; i++ {
		p := tlm.NewWrite(uint64(0x400+4*i), []byte{byte(i), 0, 0, 0})
		ram.TransportDbg(p)
	}
	cpu.Reset(0x4000)
	cpu.SetReg(6, 2)      // shift amount for i*4
	cpu.SetReg(7, 0x8000) // watchdog base
	cpu.SetReg(8, 0x800)  // result cell
	return cpu, ram
}

func main() {
	k := sim.NewKernel()
	wd := ecu.NewWatchdog(k, "wd", sim.US(50))
	wdFired := 0
	wd.OnTimeout = func() { wdFired++ }
	wd.Start()

	primary, pram := buildCore("primary", k, wd)
	shadow, _ := buildCore("shadow", k, nil)
	ls := ecu.NewLockstep(primary, shadow)

	// SEU #1: flip a bit in the primary's ECC-protected lookup table —
	// the ECC corrects it transparently on the next read.
	if err := pram.FlipStoredBit(0x410, 3); err != nil {
		panic(err)
	}
	// SEU #2: flip a register bit in the shadow core mid-run — the
	// lockstep comparator catches the divergence. (The whole program
	// takes ~4.5 us, so inject at 2 us with a fine quantum.)
	k.Thread("seu", func(ctx *sim.ThreadCtx) {
		ctx.WaitTime(sim.US(2))
		shadow.FlipRegBit(3, 7)
	})
	// The watchdog re-arms forever; stop it (and let the event queue
	// drain) once both cores halt.
	k.Thread("stopper", func(ctx *sim.ThreadCtx) {
		for !primary.Halted() || !shadow.Halted() {
			ctx.WaitTime(sim.US(1))
		}
		wd.Stop()
	})

	detected, err := ecu.RunLockstep(k, ls, sim.NS(500), 100000)
	if err != nil {
		panic(err)
	}
	wd.Stop()

	corr, unc := pram.Stats()
	fmt.Printf("simulated time:        %v\n", k.Now())
	fmt.Printf("instructions:          primary %d, shadow %d\n", primary.Instructions(), shadow.Instructions())
	fmt.Printf("ECC:                   %d corrected, %d uncorrectable\n", corr, unc)
	fmt.Printf("watchdog:              %d kicks, %d timeouts\n", wd.Kicks(), wd.Timeouts())
	fmt.Printf("lockstep divergence:   %v\n", detected)
	if detected {
		fmt.Printf("  detail: %s\n", ls.Detail())
	}
	fmt.Println()
	switch {
	case corr > 0 && detected && wdFired == 0:
		fmt.Println("all three mechanisms did their job: ECC corrected the memory SEU,")
		fmt.Println("lockstep caught the register SEU, and the software never missed a kick.")
	default:
		fmt.Println("unexpected mechanism behaviour — inspect the counters above.")
	}
}
