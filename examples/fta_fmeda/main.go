// Analytic-vs-simulated safety analysis: the classic expert-built
// fault tree and FMEDA (Sec. 2.1 of the paper) next to the fault tree
// synthesized from an error-effect simulation campaign (reference [8]
// / experiment E7). Run with:
//
//	go run ./examples/fta_fmeda
package main

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/safety"
	"repro/internal/sim"
)

func main() {
	// --- Analytic side: expert-built models of the unprotected CAPS.
	const p = 0.001
	analytic := safety.Or("G1",
		safety.BasicEvent("caps.accel0.harness/stuck-at-1", p),
		safety.BasicEvent("caps.accel0.harness/short-to-supply", p),
		safety.BasicEvent("caps.airbag.threshold/stuck-at-0", p),
	)
	pa, err := analytic.TopEventProbability()
	if err != nil {
		panic(err)
	}
	fmt.Println("analytic fault tree (expert knowledge):")
	fmt.Print(analytic)
	fmt.Printf("top-event probability: %.6g\n\n", pa)

	fmeda, err := safety.EvaluateFMEDA([]safety.FailureMode{
		{Component: "accel0", Mode: "short", RateFIT: 120, DiagnosticCoverage: 0},
		{Component: "airbag", Mode: "threshold", RateFIT: 60, DiagnosticCoverage: 0},
		{Component: "fusion", Mode: "calib", RateFIT: 250, SafeFraction: 0.6, DiagnosticCoverage: 0},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("analytic FMEDA: %s\n\n", fmeda)

	// --- Simulated side: the same tree, synthesized from a campaign.
	runner, err := caps.NewRunner(caps.Unprotected(), caps.NormalDriving(), sim.MS(60))
	if err != nil {
		panic(err)
	}
	universe := runner.Universe(sim.MS(5))
	var outcomes []fault.Outcome
	for _, d := range universe {
		outcomes = append(outcomes, runner.RunScenario(fault.Single(d)))
	}
	probs := map[string]float64{}
	for _, d := range universe {
		probs[analysis.EventKey(d)] = p
	}
	synth := analysis.SynthesizeFaultTree("G1-from-simulation", outcomes,
		func(c fault.Classification) bool { return c == fault.SafetyCritical }, probs, p)
	ps, err := synth.TopEventProbability()
	if err != nil {
		panic(err)
	}
	fmt.Println("fault tree synthesized from the error-effect campaign:")
	fmt.Print(synth)
	fmt.Printf("top-event probability: %.6g\n\n", ps)

	if pa == ps {
		fmt.Println("simulation reproduced the expert tree exactly — FTA fell out of the campaign ([8]).")
	} else {
		fmt.Printf("trees differ (analytic %.6g vs simulated %.6g): the campaign found structure the expert missed, or vice versa.\n", pa, ps)
	}
}
