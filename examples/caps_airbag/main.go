// CAPS airbag case study: the paper's Fig. 1 system as a virtual
// prototype, exercised by the single-fault campaign behind its one
// concrete safety requirement — "the failure of any system component
// must not trigger the airbag in normal operation".
//
// The campaign runs twice (safety mechanisms on and off) and prints
// the outcome tally plus every G1 violation found. Run with:
//
//	go run ./examples/caps_airbag
package main

import (
	"fmt"

	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stressor"
)

func main() {
	horizon := sim.MS(80)

	for _, cfg := range []struct {
		name string
		c    caps.Config
	}{
		{"PROTECTED (plausibility, calib CRC, threshold redundancy, frame watchdog)", caps.Protected()},
		{"UNPROTECTED (all mechanisms disabled)", caps.Unprotected()},
	} {
		fmt.Println("=== " + cfg.name + " ===")
		runner, err := caps.NewRunner(cfg.c, caps.NormalDriving(), horizon)
		if err != nil {
			panic(err)
		}
		var scenarios []fault.Scenario
		for _, d := range runner.Universe(sim.MS(10)) {
			scenarios = append(scenarios, fault.Single(d))
		}
		campaign := &stressor.Campaign{Name: cfg.name, Run: runner.RunFunc()}
		res, err := campaign.Execute(scenarios)
		if err != nil {
			panic(err)
		}

		t := &report.Table{
			Title:   fmt.Sprintf("%d single faults, normal driving", len(scenarios)),
			Columns: []string{"class", "count"},
		}
		for c := fault.NoEffect; c <= fault.SafetyCritical; c++ {
			if n := res.Tally[c]; n > 0 {
				t.AddRow(c.String(), n)
			}
		}
		fmt.Println(t.Render())

		if viol := res.ByClass(fault.SafetyCritical); len(viol) > 0 {
			fmt.Println("G1 violations (inadvertent deployment):")
			for _, o := range viol {
				fmt.Printf("  %-45s %s\n", o.Scenario.ID, o.Detail)
			}
		} else {
			fmt.Println("G1 holds: no single fault triggers the airbag.")
		}
		fmt.Println()
	}

	// And the dual: in a real crash the protected system still fires.
	runner, err := caps.NewRunner(caps.Protected(), caps.CrashAt(sim.MS(20)), horizon)
	if err != nil {
		panic(err)
	}
	fmt.Printf("crash check (G2): golden crash run deploys = %s\n", runner.Golden().Outputs["fired"])
}
