// Quickstart: the smallest complete error-effect simulation.
//
// A UVM testbench drives write/read traffic through a TLM memory DUT
// while a stressor injects a transient stuck-at fault into one cell;
// the scoreboard is the failure detector. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/stressor"
	"repro/internal/tlm"
	"repro/internal/uvm"
)

// env is the testbench: driver traffic, monitor-on-driver, scoreboard,
// and a stressor attacking the DUT.
type env struct {
	uvm.Comp
	dut      *tlm.Memory
	sb       *uvm.Scoreboard[byte]
	stressor *stressor.Stressor
}

func newEnv(k *sim.Kernel) *env {
	e := &env{dut: tlm.NewMemory("dut", 0, 256)}
	e.dut.ReadLatency = sim.US(1)
	e.dut.WriteLatency = sim.US(1)
	uvm.NewComp(e, nil, "env")
	e.sb = uvm.NewScoreboard[byte](e, "scoreboard")

	// The stressor holds cell 0x10 bit 0 at 1 for 40..60 us.
	reg := fault.NewRegistry()
	reg.MustRegister(fault.MemoryInjector("env.dut", e.dut))
	e.stressor = stressor.New(e, "stressor", reg)
	e.stressor.SetScenario(fault.Single(fault.Descriptor{
		Name: "cell-stuck", Model: fault.StuckAt1, Class: fault.Transient,
		Target: "env.dut", Address: 0x10, Bit: 0,
		Start: sim.US(40), Duration: sim.US(20),
	}))
	return e
}

// Run is the stimulus sequence: write i, read it back, compare.
func (e *env) Run(ctx *sim.ThreadCtx) {
	e.Env().RaiseObjection()
	defer e.Env().DropObjection()
	sock := tlm.NewInitiatorSocket("drv")
	sock.Bind(e.dut)
	for i := 0; i < 50; i++ {
		data := byte(i * 2)
		var d sim.Time
		sock.Write(0x10, []byte{data}, &d)
		got, _ := sock.Read(0x10, 1, &d)
		ctx.WaitTime(d)
		e.sb.Expect(data)
		e.sb.Observe(got[0])
	}
}

func main() {
	k := sim.NewKernel()
	uenv := uvm.NewEnv(k)
	e := newEnv(k)
	errs := uenv.RunTest(e, sim.TimeMax)

	fmt.Printf("simulated time: %v\n", k.Now())
	fmt.Printf("transactions:   %d observed, %d matched\n", e.sb.Observed(), e.sb.Matched())
	for _, r := range e.stressor.Records() {
		action := "inject"
		if !r.Inject {
			action = "revert"
		}
		fmt.Printf("stressor:       %s %s at %v\n", action, r.Fault.Name, r.At)
	}
	if len(errs) == 0 {
		fmt.Println("PROBLEM: the fault escaped the testbench")
		return
	}
	fmt.Println("fault detected by the scoreboard:")
	for _, msg := range errs {
		fmt.Println("  " + msg)
	}
}
