// Mission profile pipeline (the paper's Fig. 2): an OEM profile is
// refined down the supply chain, fault/error descriptions are derived
// from its environmental stresses, scheduled into operating states
// and injected into the CAPS prototype by the stressor. Run with:
//
//	go run ./examples/mission_profile
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/caps"
	"repro/internal/fault"
	"repro/internal/missionprofile"
	"repro/internal/sim"
)

func main() {
	// OEM level: the vehicle's engine-compartment profile.
	oem := missionprofile.VehicleUnderhood("vehicle-front-zone")
	fmt.Printf("OEM profile %q: %d stresses, %d operating states, %.0f h mission\n",
		oem.Component, len(oem.Stresses), len(oem.States), oem.MissionHours)

	// Tier-1 level: the CAPS sensor cluster bolted to the firewall —
	// more vibration, a little cooler.
	tier1, err := oem.Refine("caps-sensor-cluster", []missionprofile.TransferRule{
		{Kind: missionprofile.Vibration, Factor: 1.5},
		{Kind: missionprofile.Temperature, Factor: 1, Offset: -15},
	})
	if err != nil {
		panic(err)
	}
	v, _ := tier1.Stress(missionprofile.Vibration)
	fmt.Printf("Tier-1 profile %q: vibration now %.0f..%.0f g\n", tier1.Component, v.Min, v.Max)

	// Derivation: environmental stresses become formal fault
	// descriptions against the prototype's injection sites.
	horizon := sim.MS(60)
	runner, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), horizon)
	if err != nil {
		panic(err)
	}
	derived, err := missionprofile.Derive(tier1, missionprofile.DefaultRules(), runner.Sites())
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nDerived %d fault/error descriptions:\n", len(derived))
	for _, d := range derived {
		fmt.Printf("  %-55s %-15s %-12s %6.0f FIT\n",
			d.Descriptor.Name, d.Descriptor.Model.String(), d.Descriptor.Class.String(), d.Descriptor.Rate)
	}

	// Scheduling: faults land in operating states proportionally to
	// state weight (stressful states attract more activations).
	scenarios := missionprofile.Schedule(tier1, derived, horizon-sim.MS(5), rand.New(rand.NewSource(1)))
	fmt.Printf("\nScheduled %d scenarios; injecting into the protected CAPS prototype:\n", len(scenarios))
	tally := make(fault.Tally)
	for _, sc := range scenarios {
		o := runner.RunScenario(sc)
		tally.Add(o)
		fmt.Printf("  %-70s start=%-8v -> %s\n", sc.ID, sc.Faults[0].Start, o.Class)
	}
	fmt.Printf("\ncampaign tally: %s\n", tally)
}
