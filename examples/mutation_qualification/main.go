// Testbench qualification by mutation analysis (Sec. 2.4 of the
// paper): the same behavioural model is tested by a weak and a strong
// suite; both reach full statement coverage, but only the mutation
// score exposes the weak one. Run with:
//
//	go run ./examples/mutation_qualification
package main

import (
	"fmt"

	"repro/internal/mdl"
	"repro/internal/mutation"
)

const model = `
# Cruise-control actuation arbiter.
func arbitrate(driverBrake, accDemand, speed) {
  let cmd = accDemand
  if driverBrake > 0 {
    cmd = 0           # driver always wins
  }
  if speed > 180 {
    cmd = 0           # hard cutoff
  }
  if cmd > 100 {
    cmd = 100
  }
  return cmd
}
`

func main() {
	prog, err := mdl.Parse(model)
	if err != nil {
		panic(err)
	}

	weak := []mutation.Test{
		{Fn: "arbitrate", Args: []int64{1, 50, 100}},  // brake branch
		{Fn: "arbitrate", Args: []int64{0, 200, 190}}, // cutoff branch
		{Fn: "arbitrate", Args: []int64{0, 150, 100}}, // clamp branch
		{Fn: "arbitrate", Args: []int64{0, 30, 100}},  // pass-through
	}
	strong := append([]mutation.Test{}, weak...)
	strong = append(strong,
		mutation.Test{Fn: "arbitrate", Args: []int64{0, 50, 180}}, // speed boundary
		mutation.Test{Fn: "arbitrate", Args: []int64{0, 50, 181}},
		mutation.Test{Fn: "arbitrate", Args: []int64{0, 100, 100}}, // clamp boundary
		mutation.Test{Fn: "arbitrate", Args: []int64{0, 101, 100}},
		mutation.Test{Fn: "arbitrate", Args: []int64{0, 99, 100}},
		mutation.Test{Fn: "arbitrate", Args: []int64{1, 0, 0}},
	)

	for _, suite := range []struct {
		name  string
		tests []mutation.Test
	}{{"weak", weak}, {"strong", strong}} {
		rep, err := mutation.Qualify(prog, suite.tests)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-6s suite: %2d tests, statement coverage %3.0f%%, mutation score %3.0f%% (%d/%d killed)\n",
			suite.name, len(suite.tests), rep.StatementCoverage*100, rep.Score*100, rep.Killed, rep.Total)
		if suite.name == "weak" {
			fmt.Println("  surviving mutants the weak suite cannot see:")
			for _, m := range rep.Survivors() {
				fmt.Printf("    [%s] %s\n", m.Operator, m.Description)
			}
		}
	}
	fmt.Println("\nsame coverage, different scores: the mutation score is the testbench metric (paper Sec. 2.4).")
}
