// Full evaluation: the three-pillar façade (internal/core) runs the
// paper's entire methodology in one call — mission profile in,
// quantitative safety artifacts out. Run with:
//
//	go run ./examples/full_evaluation
package main

import (
	"fmt"

	"repro/internal/caps"
	"repro/internal/core"
	"repro/internal/missionprofile"
	"repro/internal/sim"
)

func main() {
	horizon := sim.MS(60)

	// The virtual prototype under evaluation.
	runner, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), horizon)
	if err != nil {
		panic(err)
	}

	// The mission profile of the component, refined from the vehicle
	// level to the sensor cluster's mounting point.
	profile, err := missionprofile.VehicleUnderhood("vehicle").Refine(
		"caps-sensor-cluster",
		[]missionprofile.TransferRule{{Kind: missionprofile.Vibration, Factor: 1.5}},
	)
	if err != nil {
		panic(err)
	}

	// Pillars (i) + (ii) + (iii) in one evaluation.
	ev := &core.Evaluation{
		Profile:   profile,
		Sites:     runner.Sites(),
		Run:       runner.RunFunc(),
		Horizon:   horizon - sim.MS(5),
		Seed:      42,
		Replicate: 5,
	}
	summary, err := ev.Execute()
	if err != nil {
		panic(err)
	}

	fmt.Println("=== full safety evaluation of the CAPS sensor cluster ===")
	fmt.Printf("derived fault descriptions: %d\n", summary.Derived)
	fmt.Printf("stress tests executed:      %d\n", summary.Scenarios)
	fmt.Printf("fault-space coverage:       %.0f%%\n", summary.Coverage*100)
	fmt.Printf("outcome tally:              %s\n", summary.Tally)
	fmt.Println("weak-spot ranking:")
	for _, w := range summary.WeakSpots {
		fmt.Printf("  %-28s severity %d\n", w.Site, w.Severity)
	}
	fmt.Printf("synthesized hazard tree:\n%s", summary.FaultTree)
	fmt.Printf("P(hazard) under the profile: %.3g\n", summary.TopEventProbability)
	fmt.Println()
	fmt.Println(summary)
}
