package govp

// The benchmark harness regenerates every experiment of the
// reproduction (DESIGN.md §3): one benchmark per table/figure. Each
// iteration runs the full experiment and asserts that the paper's
// claimed shape holds, so `go test -bench=. -benchmem` both measures
// and re-validates the whole evaluation.

import (
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/caps"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stressor"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !res.ShapeHolds {
			b.Fatalf("%s shape violated: %s", id, res.ShapeDetail)
		}
	}
}

// BenchmarkE1_AbstractionLadder regenerates the Sec. 2.3 speed-up
// claim table (gate level → LT+temporal-decoupling).
func BenchmarkE1_AbstractionLadder(b *testing.B) {
	old := experiments.E1Items
	experiments.E1Items = 500
	defer func() { experiments.E1Items = old }()
	benchExperiment(b, "E1")
}

// BenchmarkE2_CrossLayer regenerates the gate-vs-TLM injection
// divergence table (Sec. 3.4, [40]).
func BenchmarkE2_CrossLayer(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3_MutationVsCoverage regenerates the testbench-quality
// metric comparison (Sec. 2.4).
func BenchmarkE3_MutationVsCoverage(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4_MonteCarloVsGuided regenerates the rare-event search
// comparison (Sec. 3.4).
func BenchmarkE4_MonteCarloVsGuided(b *testing.B) {
	oldB, oldS := experiments.E4Budget, experiments.E4Seeds
	experiments.E4Budget, experiments.E4Seeds = 200, 3
	defer func() { experiments.E4Budget, experiments.E4Seeds = oldB, oldS }()
	benchExperiment(b, "E4")
}

// BenchmarkE5_MissionProfile regenerates the profile-derived vs
// uniform campaign comparison (Sec. 3.2).
func BenchmarkE5_MissionProfile(b *testing.B) {
	old := experiments.E5Runs
	experiments.E5Runs = 30
	defer func() { experiments.E5Runs = old }()
	benchExperiment(b, "E5")
}

// BenchmarkE6_QuantumSweep regenerates the temporal-decoupling
// accuracy/speed sweep (Sec. 3.4).
func BenchmarkE6_QuantumSweep(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7_SimFTA regenerates the simulation-synthesized fault
// tree comparison (Sec. 2.1, [8]).
func BenchmarkE7_SimFTA(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8_SingleFaultCAPS regenerates the exhaustive single-fault
// campaign and FMEDA tables (Sec. 1 safety goal).
func BenchmarkE8_SingleFaultCAPS(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9_MutationSchemata regenerates the schemata-vs-rebuild
// efficiency table (Sec. 2.4, [21]).
func BenchmarkE9_MutationSchemata(b *testing.B) {
	old := experiments.E9Repeats
	experiments.E9Repeats = 7
	defer func() { experiments.E9Repeats = old }()
	benchExperiment(b, "E9")
}

// BenchmarkF2_MissionProfilePipeline regenerates Fig. 2 as an
// executable pipeline.
func BenchmarkF2_MissionProfilePipeline(b *testing.B) { benchExperiment(b, "F2") }

// BenchmarkF3_ClosedLoop regenerates Fig. 3 as an executable
// coverage-closure loop.
func BenchmarkF3_ClosedLoop(b *testing.B) { benchExperiment(b, "F3") }

// BenchmarkX1_ConcolicATPG regenerates the extension experiment:
// concolic test generation closing mutation-score gaps.
func BenchmarkX1_ConcolicATPG(b *testing.B) { benchExperiment(b, "X1") }

// BenchmarkX2_MechanismAblation regenerates the safety-mechanism
// ablation table (DESIGN.md §4).
func BenchmarkX2_MechanismAblation(b *testing.B) { benchExperiment(b, "X2") }

// BenchmarkX3_FaultSimAcceleration regenerates the bit-parallel
// fault-grading comparison (Sec. 2.2 acceleration).
func BenchmarkX3_FaultSimAcceleration(b *testing.B) { benchExperiment(b, "X3") }

// BenchmarkCampaignParallel measures the worker-pool campaign engine
// against the sequential loop on the E8 single-fault universe (the
// repository's hot path). Each scenario builds a fresh CAPS virtual
// prototype, so runs are independent and the speedup at
// workers=GOMAXPROCS approaches the core count on a multi-core
// machine; compare the sequential and workers sub-benchmarks with
// benchstat. Results are deterministic for every worker count (see
// TestCampaignDeterminismAcrossWorkers), so the sub-benchmarks also
// cross-check each other's tallies.
// BenchmarkKernelObsOverhead measures the cost of the observability
// hooks on the kernel hot path: the same two-process ping-pong
// workload uninstrumented (the nil-check fast path the ±5% overhead
// budget of DESIGN.md §8 applies to) and with a full metrics+trace
// instrument attached. Compare the sub-benchmarks with benchstat.
func BenchmarkKernelObsOverhead(b *testing.B) {
	const rounds = 2000
	workload := func(k *sim.Kernel) {
		ping := k.NewEvent("ping")
		pong := k.NewEvent("pong")
		k.Thread("ping", func(ctx *sim.ThreadCtx) {
			for i := 0; i < rounds; i++ {
				ping.Notify(sim.NS(10))
				ctx.Wait(pong)
			}
		})
		k.Thread("pong", func(ctx *sim.ThreadCtx) {
			for i := 0; i < rounds; i++ {
				ctx.Wait(ping)
				pong.Notify(sim.NS(10))
			}
		})
	}
	run := func(b *testing.B, instrument bool) {
		b.ReportAllocs()
		b.ReportMetric(rounds, "rounds/op")
		for i := 0; i < b.N; i++ {
			k := sim.NewKernel()
			if instrument {
				k.SetInstrument(&sim.Instrument{
					Metrics: obs.NewRegistry(),
					Trace:   obs.NewTraceRecorder(),
				})
			}
			workload(k)
			if err := k.Run(sim.TimeMax); err != nil {
				b.Fatal(err)
			}
			k.Shutdown()
		}
	}
	b.Run("uninstrumented", func(b *testing.B) { run(b, false) })
	b.Run("instrumented", func(b *testing.B) { run(b, true) })
}

func BenchmarkCampaignParallel(b *testing.B) {
	horizon := sim.MS(80)
	runner, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), horizon)
	if err != nil {
		b.Fatal(err)
	}
	var scenarios []fault.Scenario
	for _, d := range runner.Universe(sim.MS(10)) {
		scenarios = append(scenarios, fault.Single(d))
	}
	want, err := (&stressor.Campaign{Name: "ref", Run: runner.RunFunc()}).Execute(scenarios)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name    string
		workers int
	}{
		{"sequential", 0},
		{fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), stressor.WorkersAuto},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			c := &stressor.Campaign{Name: "bench", Run: runner.RunFunc(), Workers: bc.workers}
			b.ReportAllocs()
			b.ReportMetric(float64(len(scenarios)), "scenarios/op")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := c.Execute(scenarios)
				if err != nil {
					b.Fatal(err)
				}
				if res.Tally.String() != want.Tally.String() {
					b.Fatalf("tally %s != sequential reference %s", res.Tally, want.Tally)
				}
			}
		})
	}
}

// BenchmarkCampaignReuse is the tentpole measurement: the E8
// single-fault universe with rebuild-per-run (the pre-reuse engine,
// ReuseOff) against the pooled Kernel.Reset+Rearm path, sequentially
// and at GOMAXPROCS workers. Both paths produce identical tallies
// (cross-checked each iteration); only the per-scenario constant
// factor differs. Compare rebuild/* with reuse/* using benchstat.
//
// Two regimes, because the reuse payoff scales with the ratio of
// construction cost to simulated work:
//
//   - h=10ms is the campaign-overhead regime — short observation
//     windows, the shape of statistical injection sweeps where a
//     campaign burns through very many runs. This is where the PR 3
//     acceptance bar (≥1.5× on the sequential pair) is measured.
//   - h=80ms is the full-length E8 experiment, where per-run simulated
//     work dominates both paths; reuse still wins the construction
//     premium and allocates ~6× less.
func BenchmarkCampaignReuse(b *testing.B) {
	for _, reg := range []struct {
		name    string
		horizon sim.Time
		inject  sim.Time
	}{{"h=10ms", sim.MS(10), sim.MS(2)}, {"h=80ms", sim.MS(80), sim.MS(10)}} {
		ref, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), reg.horizon)
		if err != nil {
			b.Fatal(err)
		}
		scenarios := fault.Singles(ref.Universe(reg.inject))
		want, err := (&stressor.Campaign{Name: "ref", Run: ref.RunFunc()}).Execute(scenarios)
		if err != nil {
			b.Fatal(err)
		}
		ref.Close()
		for _, mode := range []struct {
			name     string
			reuseOff bool
		}{{"rebuild", true}, {"reuse", false}} {
			for _, wc := range []struct {
				name    string
				workers int
			}{{"sequential", 0}, {fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), stressor.WorkersAuto}} {
				b.Run(reg.name+"/"+mode.name+"/"+wc.name, func(b *testing.B) {
					runner, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), reg.horizon)
					if err != nil {
						b.Fatal(err)
					}
					defer runner.Close()
					runner.ReuseOff = mode.reuseOff
					c := &stressor.Campaign{Name: "bench", Run: runner.RunFunc(), Workers: wc.workers}
					b.ReportAllocs()
					b.ReportMetric(float64(len(scenarios)), "scenarios/op")
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := c.Execute(scenarios)
						if err != nil {
							b.Fatal(err)
						}
						if res.Tally.String() != want.Tally.String() {
							b.Fatalf("tally %s != reference %s", res.Tally, want.Tally)
						}
					}
				})
			}
		}
	}
}

// BenchmarkCampaignCheckpointed is the PR 5 tentpole measurement:
// the E8 single-fault universe at a late injection time (h=80ms,
// inject=60ms — the golden prefix is 3/4 of the run window) on the
// PR 3 reuse path against the golden-run checkpoint path, which
// simulates that prefix once per worker session and restores a
// snapshot instead of re-simulating it for every scenario. Both paths
// produce identical tallies (cross-checked each iteration); the
// acceptance bar is ≥1.5× on the sequential pair. The speedup scales
// with the golden-prefix share of the horizon: at early injection
// times the checkpoint path degrades gracefully toward reuse.
func BenchmarkCampaignCheckpointed(b *testing.B) {
	horizon, inject := sim.MS(80), sim.MS(60)
	ref, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), horizon)
	if err != nil {
		b.Fatal(err)
	}
	scenarios := fault.Singles(ref.Universe(inject))
	want, err := (&stressor.Campaign{Name: "ref", Run: ref.RunFunc()}).Execute(scenarios)
	if err != nil {
		b.Fatal(err)
	}
	ref.Close()
	for _, mode := range []struct {
		name        string
		checkpoints bool
	}{{"reuse", false}, {"checkpointed", true}} {
		for _, wc := range []struct {
			name    string
			workers int
		}{{"sequential", 0}, {fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), stressor.WorkersAuto}} {
			b.Run(mode.name+"/"+wc.name, func(b *testing.B) {
				runner, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), horizon)
				if err != nil {
					b.Fatal(err)
				}
				defer runner.Close()
				c := &stressor.Campaign{Name: "bench", Run: runner.RunFunc(), Workers: wc.workers}
				if mode.checkpoints {
					c.Checkpoints = true
					c.Checkpointer = runner
				}
				b.ReportAllocs()
				b.ReportMetric(float64(len(scenarios)), "scenarios/op")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := c.Execute(scenarios)
					if err != nil {
						b.Fatal(err)
					}
					if res.Tally.String() != want.Tally.String() {
						b.Fatalf("tally %s != reference %s", res.Tally, want.Tally)
					}
				}
			})
		}
	}
}

// BenchmarkCampaignTree is the PR 8 tentpole measurement: the E8
// transient sweep (every injection site x four sub-frame injection
// offsets at inject=10ms, 400us pulses, h=80ms full horizon) across
// four engine modes. reuse and checkpointed are the PR 3/PR 5
// baselines; tree replaces the single rolling checkpoint with the
// retained-node tree; tree+ee adds convergence early-exit against the
// golden trajectory. Transient pulses this short leave most runs
// dynamically identical to the golden run within a stride or two of
// the revert, so early-exit truncates ~3/4 of the universe (62/84
// scenarios converge; the rest latch a detection or corrupt persistent
// state and must run out the horizon). The acceptance bar is >= 2x on
// the tree+ee vs checkpointed sequential pair; every mode produces the
// identical tally (cross-checked each iteration), and byte-identical
// full results are pinned by the stressortest matrix.
func BenchmarkCampaignTree(b *testing.B) {
	horizon := sim.MS(80)
	ref, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), horizon)
	if err != nil {
		b.Fatal(err)
	}
	var universe []fault.Descriptor
	for _, off := range []sim.Time{0, sim.US(250), sim.US(500), sim.US(750)} {
		for _, d := range ref.Universe(sim.MS(10) + off) {
			d.Name += "+t400us@" + off.String()
			d.Class = fault.Transient
			d.Duration = sim.US(400)
			universe = append(universe, d)
		}
	}
	scenarios := fault.Singles(universe)
	want, err := (&stressor.Campaign{Name: "ref", Run: ref.RunFunc()}).Execute(scenarios)
	if err != nil {
		b.Fatal(err)
	}
	ref.Close()
	for _, mode := range []struct {
		name                     string
		checkpoints, tree, early bool
	}{
		{"reuse", false, false, false},
		{"checkpointed", true, false, false},
		{"tree", true, true, false},
		{"tree+ee", true, true, true},
	} {
		for _, wc := range []struct {
			name    string
			workers int
		}{{"sequential", 0}, {fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), stressor.WorkersAuto}} {
			b.Run(mode.name+"/"+wc.name, func(b *testing.B) {
				runner, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), horizon)
				if err != nil {
					b.Fatal(err)
				}
				defer runner.Close()
				c := &stressor.Campaign{Name: "bench", Run: runner.RunFunc(), Workers: wc.workers}
				if mode.checkpoints {
					c.Checkpoints = true
					c.Checkpointer = runner
					c.CheckpointTree = mode.tree
					c.EarlyExit = mode.early
				}
				b.ReportAllocs()
				b.ReportMetric(float64(len(scenarios)), "scenarios/op")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := c.Execute(scenarios)
					if err != nil {
						b.Fatal(err)
					}
					if res.Tally.String() != want.Tally.String() {
						b.Fatalf("tally %s != reference %s", res.Tally, want.Tally)
					}
				}
			})
		}
	}
}

// BenchmarkKernelTimedScheduling isolates the allocation-lean event
// queue: a reused kernel running a self-retriggering timed event in
// steady state. allocs/op must report 0 (also pinned by
// TestSteadyStateTimedSchedulingAllocs).
func BenchmarkKernelTimedScheduling(b *testing.B) {
	k := sim.NewKernel()
	tick := k.NewEvent("tick")
	k.MethodNoInit("ticker", func() { tick.Notify(sim.NS(10)) }, tick)
	tick.Notify(sim.NS(10))
	if err := k.Run(sim.US(1)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.Run(sim.US(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignSharded measures the shard/journal/merge overhead
// on the E8 single-fault universe in the campaign-overhead regime
// (h=10ms): each iteration executes every shard with a fresh run
// journal, reads the journals back and (for shards>1) merges them
// into the final Result, exactly as a distributed campaign would.
// shards=1 is the journaled-but-unsharded baseline; the deltas to
// shards=2 and shards=4 price the partition + merge machinery.
func BenchmarkCampaignSharded(b *testing.B) {
	horizon, inject := sim.MS(10), sim.MS(2)
	ref, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), horizon)
	if err != nil {
		b.Fatal(err)
	}
	scenarios := fault.Singles(ref.Universe(inject))
	want, err := (&stressor.Campaign{Name: "ref", Run: ref.RunFunc()}).Execute(scenarios)
	if err != nil {
		b.Fatal(err)
	}
	ref.Close()
	hash := stressor.UniverseHash(scenarios)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			runner, err := caps.NewRunner(caps.Protected(), caps.NormalDriving(), horizon)
			if err != nil {
				b.Fatal(err)
			}
			defer runner.Close()
			dir := b.TempDir()
			b.ReportAllocs()
			b.ReportMetric(float64(len(scenarios)), "scenarios/op")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				js := make([]*journal.Journal, shards)
				for s := 0; s < shards; s++ {
					path := filepath.Join(dir, fmt.Sprintf("i%d-s%d.jsonl", i, s))
					h := journal.Header{
						Campaign: "bench", Shard: s, Shards: shards,
						Total: len(scenarios), Universe: hash,
					}
					w, err := journal.Create(path, h)
					if err != nil {
						b.Fatal(err)
					}
					var sh stressor.Shard
					if shards > 1 {
						sh = stressor.Shard{Index: s, Count: shards}
					}
					c := &stressor.Campaign{Name: "bench", Run: runner.RunFunc(), Shard: sh, Journal: w}
					if _, err := c.Execute(scenarios); err != nil {
						b.Fatal(err)
					}
					if err := w.Close(); err != nil {
						b.Fatal(err)
					}
					if js[s], err = journal.Read(path); err != nil {
						b.Fatal(err)
					}
				}
				res, err := stressor.Merge(stressor.MergeSpec{}, scenarios, js)
				if err != nil {
					b.Fatal(err)
				}
				if res.Tally.String() != want.Tally.String() {
					b.Fatalf("tally %s != reference %s", res.Tally, want.Tally)
				}
			}
		})
	}
}
